// Package cola implements the lookahead-array family of Section 3 of
// "Cache-Oblivious Streaming B-trees" (Bender et al., SPAA 2007):
//
//   - GCOLA: the growth-factor-g lookahead array with pointer density p,
//     the implementation studied in the paper's Section 4. With g = 2 it
//     is the cache-oblivious lookahead array (COLA); with p = 0 it
//     degrades to the "basic COLA" whose searches binary-search every
//     level.
//   - Deamortized: the basic-COLA deamortization of Theorem 22
//     (safe/unsafe levels, O(log N) worst-case moves per insert).
//   - DeamortizedLookahead: the Theorem 24 deamortization with three
//     arrays per level and shadow/visible array states.
//
// All variants charge their memory traffic to a dam.Space so experiments
// can count block transfers in the DAM model; a nil space disables
// accounting.
package cola

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/extmem"
)

// Entry kinds. A level's array interleaves real elements and redundant
// lookahead entries in key order; tombstones are real entries marking a
// deletion (a documented extension — the paper analyzes only inserts,
// searches, and range queries).
const (
	kindReal uint8 = iota
	kindLookahead
	kindTombstone
)

// entry is one 32-byte array cell. The paper pads 16-byte elements to 32
// bytes and uses 64 of the padding bits for a copy of the closest real
// lookahead pointer to the left (field left) or, for redundant elements,
// for the lookahead pointer itself (field ptr).
type entry struct {
	key  uint64
	val  uint64
	ptr  int32 // kindLookahead: absolute index of the sampled cell in the next level
	left int32 // absolute index into next level of nearest lookahead at or before this cell; -1 if none
	kind uint8
}

// level is one array of the lookahead structure. Occupied cells live
// right-justified in data[start:], matching the paper ("we maintain the
// elements right justified in their array").
//
// A level lives in exactly one of two homes. In RAM, data holds the
// full cell array (len(data) == cells). Spilled — when the owning GCOLA
// has a spill store and the level index is at or past the spill depth —
// data is nil and the occupied window lives left-justified in an extmem
// level image: logical cell i (start <= i < cells) is file cell
// i - start, so the right-justified geometry, the DAM offsets, and
// every charge stay identical while only the occupied cells hit disk.
// ext is nil while a spilled level is empty (no file). All reads funnel
// through GCOLA.cellAt, which hides the distinction.
type level struct {
	// data is the level's cell array in the DAM model: every index,
	// range, copy, or append on it must happen inside a //repro:charges
	// accessor (machine-checked by reprolint's damcharge analyzer).
	//repro:accounted
	data  []entry
	ext   *extmem.Level // spilled image of data[start:]; nil in RAM or when empty
	cells int           // total capacity in cells (== len(data) for RAM levels)
	start int           // first occupied cell; cells when empty
	real  int           // occupied real+tombstone cells (excludes lookahead entries)
	la    int           // occupied lookahead cells
}

func (lv *level) used() int   { return lv.cells - lv.start }
func (lv *level) empty() bool { return lv.start == lv.cells }

// Options configures a GCOLA.
type Options struct {
	// Growth factor g >= 2. Level 0 holds one element; level l >= 1 holds
	// 2(g-1)g^(l-1) real elements. g = 2 gives the COLA.
	Growth int
	// PointerDensity p in [0, 0.5]: level l additionally holds
	// floor(p * realCapacity(l)) redundant lookahead entries. p = 0
	// disables fractional cascading (the "basic COLA"). The paper uses
	// p = 0.1.
	PointerDensity float64
	// Space receives DAM-model charge records; nil disables accounting.
	Space *dam.Space

	// SpillDir, when non-empty, turns on the out-of-core mode: levels at
	// index SpillDepth and deeper live in chunk-aligned files under a
	// private subdirectory of SpillDir (see internal/extmem) instead of
	// RAM slices. The merge ladder streams spilled levels sequentially;
	// Search and Range read through extmem's page cache. The DAM charge
	// stream is bit-identical to the in-RAM structure's, so the spill
	// store's actual-I/O counters can be compared against the DAM
	// prediction directly. Like Space, the spill configuration is runtime
	// wiring: it is not recorded in snapshots.
	SpillDir string
	// SpillDepth is the first level index backed by files; 0 means
	// DefaultSpillDepth. Must be >= 1 — level 0 receives single-cell
	// writes and always stays in RAM. Ignored unless SpillDir is set.
	SpillDepth int
	// SpillCacheBytes is the extmem page-cache budget (floored at
	// extmem.MinCacheChunks chunks); 0 means DefaultSpillCacheBytes.
	// Ignored unless SpillDir is set.
	SpillCacheBytes int64
}

// DefaultSpillDepth keeps the first 8 levels (a few KiB at g = 2) in
// RAM when spilling is enabled without an explicit depth.
const DefaultSpillDepth = 8

// DefaultSpillCacheBytes is the default extmem page-cache budget.
const DefaultSpillCacheBytes = 256 << 10

// DefaultPointerDensity is the pointer density used throughout the
// paper's experiments.
const DefaultPointerDensity = 0.1

// GCOLA is a lookahead array with growth factor g and pointer density p.
//
// Len is exact for workloads whose Insert calls use distinct keys, after
// Compact, and after any merge whose target is the bottom-most occupied
// level (such a merge sees the whole structure, so the count is
// reconciled authoritatively against the merged output). Between such
// merges, a key re-inserted while an older copy sits in a level the
// next merges do not reach is counted once per un-reconciled copy;
// copies that meet in a merge reconcile immediately.
//
// GCOLA is single-threaded for mutations, but its read path (Search,
// Range) follows the core.SharedReader contract: bracketed by
// Begin/EndSharedReads and with writers excluded, any number of
// goroutines may search concurrently — the search counter is atomic,
// Range runs out of pooled per-call cursors, and DAM charges go through
// the store's frozen shared-read epoch.
type GCOLA struct {
	opt    Options
	levels []level
	n      int // live-key count, reconciled during merges

	// ext is the spill store backing levels at or past opt.SpillDepth;
	// nil for a fully in-RAM structure. Close releases it.
	ext *extmem.Store

	// stats carries every counter except Searches, which lives in its
	// own atomic so concurrent bracketed searches never race Stats()
	// readers (the rest of the struct is only written under mutation
	// exclusion).
	stats    core.Stats
	searches atomic.Uint64

	// offsets[l] is the byte offset of level l in the DAM space, from the
	// deterministic capacity formula; filled alongside levels.
	offsets []int64

	// scratch holds the buffers the merge and pointer-distribution paths
	// reuse across calls, so steady-state operations do not allocate.
	// See the mergeScratch comment for the ownership rules.
	scratch mergeScratch
}

// rangeCursor tracks one level's position during Range's k-way merge.
type rangeCursor struct {
	level int
	pos   int
}

// mergeScratch is the per-tree reusable buffer set. Ownership rules
// (also documented in DESIGN.md):
//
//   - Scratch-backed slices are valid only inside the GCOLA call that
//     produced them. installLevel copies merge output into level storage
//     before the call returns, so nothing retains a scratch alias.
//   - The ladder alternates between ping and pong, so the accumulator
//     being read and the buffer being written never coincide.
//   - Buffers only grow; their steady-state capacity is bounded by the
//     largest merge performed so far (at most the largest level), which
//     is the price of allocation-free inserts.
//   - Only mutation paths (Insert/Delete/Compact) touch the scratch, and
//     those remain single-threaded; the shared-read path must not —
//     Range's cursors are pooled per call (see cursorPool) so bracketed
//     concurrent reads never contend on per-tree state.
type mergeScratch struct {
	runs [][]entry // mergeDown/Compact run headers, newest first
	one  [1]entry  // backing array for the incoming-entry run
	//repro:scratch
	ping []entry // merge-ladder accumulator (alternates with pong)
	//repro:scratch
	pong []entry // merge-ladder accumulator (alternates with ping)
	//repro:scratch
	la []entry // lookahead sample buffer for distributePointers
}

var (
	_ core.Dictionary   = (*GCOLA)(nil)
	_ core.Deleter      = (*GCOLA)(nil)
	_ core.Statser      = (*GCOLA)(nil)
	_ core.SharedReader = (*GCOLA)(nil)
)

// New returns an empty g-COLA. It panics if opt.Growth < 2, the pointer
// density is outside [0, 0.5], or the spill configuration is invalid —
// use Open for an error instead of a panic (spilling touches the
// filesystem, so its failures are ordinary errors, not programmer
// bugs).
func New(opt Options) *GCOLA {
	c, err := Open(opt)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// Open returns an empty g-COLA, creating the spill store when
// opt.SpillDir is set. The caller owns the result; a spilling structure
// holds an open directory of level files until Close.
func Open(opt Options) (*GCOLA, error) {
	if opt.Growth < 2 {
		return nil, errors.New("cola: growth factor must be at least 2")
	}
	if opt.PointerDensity < 0 || opt.PointerDensity > 0.5 {
		return nil, errors.New("cola: pointer density must be in [0, 0.5]")
	}
	c := &GCOLA{opt: opt}
	if opt.SpillDir == "" {
		if opt.SpillDepth != 0 || opt.SpillCacheBytes != 0 {
			return nil, errors.New("cola: spill depth/cache options require a spill directory")
		}
		return c, nil
	}
	if c.opt.SpillDepth == 0 {
		c.opt.SpillDepth = DefaultSpillDepth
	}
	if c.opt.SpillDepth < 1 {
		return nil, fmt.Errorf("cola: spill depth %d must be at least 1 (level 0 stays in RAM)", c.opt.SpillDepth)
	}
	if c.opt.SpillCacheBytes == 0 {
		c.opt.SpillCacheBytes = DefaultSpillCacheBytes
	}
	s, err := extmem.Open(extmem.Config{
		Dir:        c.opt.SpillDir,
		ChunkBytes: extmem.DefaultChunkBytes,
		CacheBytes: c.opt.SpillCacheBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("cola: opening spill store: %w", err)
	}
	c.ext = s
	return c, nil
}

// Close releases the spill store, removing its on-disk level files; a
// fully in-RAM structure has nothing to release and Close is a no-op.
// A spilling structure must not be used after Close.
func (c *GCOLA) Close() error {
	if c.ext == nil {
		return nil
	}
	s := c.ext
	c.ext = nil
	return s.Close()
}

// spilledLevel reports whether level l is backed by the spill store.
func (c *GCOLA) spilledLevel(l int) bool {
	return c.ext != nil && l >= c.opt.SpillDepth
}

// Spilled reports whether the structure runs in out-of-core mode.
func (c *GCOLA) Spilled() bool { return c.ext != nil }

// ActualTransfers implements core.ActualTransferCounter: real aligned
// chunk reads and writes performed by the spill store — the measured
// counterpart of the DAM-charged prediction in the owning dam.Space.
// Both counts are zero for a fully in-RAM structure.
func (c *GCOLA) ActualTransfers() (reads, writes uint64) {
	if c.ext == nil {
		return 0, 0
	}
	return c.ext.ChunkReads(), c.ext.ChunkWrites()
}

// SpillFileStats reports the spill files on disk and their total bytes;
// zeros for an in-RAM structure.
func (c *GCOLA) SpillFileStats() (files int, bytes int64, err error) {
	if c.ext == nil {
		return 0, 0, nil
	}
	return c.ext.FileStats()
}

// ResetSpillCounters zeroes the spill store's I/O counters (cache
// contents and files untouched), so a measurement phase can start from
// zero the way dam.Space.ResetCounters allows for the predicted stream.
func (c *GCOLA) ResetSpillCounters() {
	if c.ext != nil {
		c.ext.ResetCounters()
	}
}

// DropSpillCache empties the spill page cache so a measurement starts
// cold, mirroring dam.Store.DropCache.
func (c *GCOLA) DropSpillCache() {
	if c.ext != nil {
		c.ext.DropCache()
	}
}

// SpillCacheChunks reports the spill page-cache budget in chunks (0 for
// an in-RAM structure) and the chunk size in bytes.
func (c *GCOLA) SpillCacheChunks() (chunks, chunkBytes int) {
	if c.ext == nil {
		return 0, 0
	}
	return c.ext.CacheChunks(), c.ext.ChunkBytes()
}

// NewCOLA returns the cache-oblivious lookahead array: growth factor 2
// with the paper's default pointer density.
func NewCOLA(space *dam.Space) *GCOLA {
	return New(Options{Growth: 2, PointerDensity: DefaultPointerDensity, Space: space})
}

// NewBasic returns the "basic COLA": growth factor 2 and no lookahead
// pointers, so searches binary-search every level (O(log^2 N) probes).
func NewBasic(space *dam.Space) *GCOLA {
	return New(Options{Growth: 2, Space: space})
}

// Growth reports the growth factor g.
func (c *GCOLA) Growth() int { return c.opt.Growth }

// Levels reports how many levels have been allocated.
func (c *GCOLA) Levels() int { return len(c.levels) }

// Stats implements core.Statser. Safe to call concurrently with
// bracketed shared reads: Searches is loaded atomically and the other
// counters only change under mutation exclusion.
func (c *GCOLA) Stats() core.Stats {
	st := c.stats
	st.Searches = c.searches.Load()
	return st
}

// BeginSharedReads implements core.SharedReader by opening a shared
// epoch on the owning DAM store (a no-op without accounting) and, in
// out-of-core mode, on the spill store — freezing its page cache under
// the same rules. See the GCOLA type comment for the bracket contract.
func (c *GCOLA) BeginSharedReads() {
	c.opt.Space.BeginSharedReads()
	c.ext.BeginSharedReads()
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (c *GCOLA) EndSharedReads() {
	c.opt.Space.EndSharedReads()
	c.ext.EndSharedReads()
}

// realCapacity returns the number of real elements level l can hold:
// 1 for level 0, 2(g-1)g^(l-1) for l >= 1 (the paper's level sizes).
func (c *GCOLA) realCapacity(l int) int {
	if l == 0 {
		return 1
	}
	capacity := 2 * (c.opt.Growth - 1)
	for i := 1; i < l; i++ {
		capacity *= c.opt.Growth
	}
	return capacity
}

// lookaheadCapacity returns the redundant-entry budget of level l.
func (c *GCOLA) lookaheadCapacity(l int) int {
	if l == 0 {
		return 0
	}
	return int(c.opt.PointerDensity * float64(c.realCapacity(l)))
}

// totalCapacity is the allocated array size of level l.
func (c *GCOLA) totalCapacity(l int) int {
	return c.realCapacity(l) + c.lookaheadCapacity(l)
}

// ensureLevel allocates levels up through index l. Spilled levels get
// no RAM cell array — their occupied window materializes as an extmem
// image on first install.
func (c *GCOLA) ensureLevel(l int) {
	for len(c.levels) <= l {
		idx := len(c.levels)
		capTotal := c.totalCapacity(idx)
		var off int64
		if idx > 0 {
			off = c.offsets[idx-1] + int64(c.totalCapacity(idx-1))*core.ElementBytes
		}
		lv := level{cells: capTotal, start: capTotal}
		if !c.spilledLevel(idx) {
			lv.data = make([]entry, capTotal)
		}
		c.levels = append(c.levels, lv)
		c.offsets = append(c.offsets, off)
	}
}

// cellOffset is the byte offset of cell i of level l in the DAM space.
func (c *GCOLA) cellOffset(l, i int) int64 {
	return c.offsets[l] + int64(i)*core.ElementBytes
}

// chargeRead charges reading cells [i, i+n) of level l.
func (c *GCOLA) chargeRead(l, i, n int) {
	if n > 0 {
		c.opt.Space.Read(c.cellOffset(l, i), int64(n)*core.ElementBytes)
	}
}

// chargeWrite charges writing cells [i, i+n) of level l.
func (c *GCOLA) chargeWrite(l, i, n int) {
	if n > 0 {
		c.opt.Space.Write(c.cellOffset(l, i), int64(n)*core.ElementBytes)
	}
}

// Len implements core.Dictionary; see the type comment for exactness.
func (c *GCOLA) Len() int { return c.n }

// Insert implements core.Dictionary.
func (c *GCOLA) Insert(key, value uint64) {
	c.stats.Inserts++
	// Count before routing: if the entry triggers a merge reaching the
	// bottom-most occupied level, the merge reconciles n authoritatively
	// against its output (which already contains this entry).
	c.n++
	c.insertEntry(entry{key: key, val: value, kind: kindReal, left: -1})
}

// Delete implements core.Deleter: it searches for the key (so the result
// and the live count are exact) and, if present, inserts a tombstone that
// annihilates the key during future merges.
func (c *GCOLA) Delete(key uint64) bool {
	c.stats.Deletes++
	if _, ok := c.Search(key); !ok {
		return false
	}
	// Count before routing, as in Insert, so a bottom-reaching merge's
	// authoritative reconciliation is not undone afterwards.
	c.n--
	c.insertEntry(entry{key: key, kind: kindTombstone, left: -1})
	return true
}

// insertEntry routes a real or tombstone entry into level 0, cascading a
// merge when level 0 is occupied.
//
//repro:charges opt.Space (level-0 write)
func (c *GCOLA) insertEntry(e entry) {
	movesBefore := c.stats.Moves
	c.ensureLevel(0)
	lv0 := &c.levels[0]
	if lv0.empty() {
		lv0.start = len(lv0.data) - 1
		lv0.data[lv0.start] = e
		lv0.real = 1
		c.chargeWrite(0, lv0.start, 1)
	} else {
		c.mergeDown(e)
	}
	if moved := c.stats.Moves - movesBefore; moved > c.stats.MaxMoves {
		c.stats.MaxMoves = moved
	}
}

// mergeTarget picks the smallest level t >= 1 that can absorb one new
// entry plus the real contents of every level below it. For g = 2 with
// distinct keys this reproduces the binary-counter carry of Lemma 19.
func (c *GCOLA) mergeTarget() int {
	incoming := 1 // the new entry
	for l := 0; ; l++ {
		c.ensureLevel(l)
		if l > 0 && c.levels[l].real+incoming <= c.realCapacity(l) {
			return l
		}
		incoming += c.levels[l].real
	}
}

// mergeDown merges the new entry and levels 0..t-1 into level t, then
// redistributes lookahead pointers down from t. Levels 0..t-1 end empty.
//
//repro:charges opt.Space (run reads + target write)
func (c *GCOLA) mergeDown(newEntry entry) {
	t := c.mergeTarget()
	if c.spilledLevel(t) {
		// Out-of-core target: stream the merge instead of materializing
		// it. Levels below the spill depth are all in RAM (depth >= 1),
		// so this path and the RAM path below never mix homes.
		c.mergeDownSpilled(newEntry, t)
		return
	}
	target := &c.levels[t]

	// Gather source runs, newest first: the incoming entry, then levels
	// 0..t-1 (smaller level = newer), then level t's existing content.
	// Lookahead entries in levels 0..t-1 are dropped by the merge (their
	// target levels are being restructured); level t's own lookahead
	// entries (pointing into level t+1, which is untouched) survive.
	// Stripping happens in place — those levels are emptied below, so
	// compacting their occupied windows is safe and allocation-free.
	c.scratch.one[0] = newEntry
	runs := append(c.scratch.runs[:0], c.scratch.one[:])
	for l := 0; l < t; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			runs = append(runs, stripLookaheadInPlace(lv.data[lv.start:]))
		}
	}
	if !target.empty() {
		runs = append(runs, target.data[target.start:])
		c.chargeRead(t, target.start, target.used())
	}
	c.scratch.runs = runs

	// If level t is the bottom of the structure, tombstones are dropped
	// once they have annihilated every older copy of their key.
	atBottom := true
	for l := t + 1; l < len(c.levels); l++ {
		if !c.levels[l].empty() {
			atBottom = false
			break
		}
	}

	out := c.mergeRuns(runs, atBottom)

	// Install right-justified into level t.
	c.installLevel(t, out)
	c.chargeWrite(t, target.start, len(out))
	c.stats.Moves += uint64(len(out))

	// A merge into the bottom-most occupied level sees the entire
	// structure: tombstones were dropped, lookahead entries cannot exist
	// in a bottom level, so the output length IS the live-key count.
	// Setting it authoritatively makes Len exact after any such merge —
	// not only after Compact — even when duplicate-key updates had
	// accumulated un-reconciled copies across levels the smaller merges
	// never brought together.
	if atBottom {
		c.n = len(out)
	}

	// Empty the consumed levels.
	for l := 0; l < t; l++ {
		c.clearLevel(l)
	}

	c.distributePointers(t)
}

// stripLookaheadInPlace compacts a level's occupied window down to its
// real and tombstone entries, preserving order, and returns the
// compacted prefix. The caller must be about to empty the level (the
// merge path is), since the window's tail is left stale.
func stripLookaheadInPlace(run []entry) []entry {
	w := 0
	for i := range run {
		if run[i].kind != kindLookahead {
			if w != i {
				run[w] = run[i]
			}
			w++
		}
	}
	return run[:w]
}

// installLevel writes out right-justified into level l, recomputes the
// real-entry count and the left copies (each cell's copy of the closest
// lookahead pointer at or to its left). RAM levels only; spilled levels
// install through installLevelSpilled / streamMergeInto.
//
//repro:charges caller:mergeDown and Compact charge the target write
func (c *GCOLA) installLevel(l int, out []entry) {
	lv := &c.levels[l]
	if len(out) > len(lv.data) {
		panic("cola: merge output exceeds level capacity")
	}
	start := len(lv.data) - len(out)
	copy(lv.data[start:], out)
	lv.start = start
	lv.real = 0
	lv.la = 0
	last := int32(-1)
	for i := start; i < len(lv.data); i++ {
		e := &lv.data[i]
		if e.kind == kindLookahead {
			last = e.ptr
			e.left = e.ptr
			lv.la++
		} else {
			lv.real++
			e.left = last
		}
	}
}

// mergeRuns performs a k-way merge of runs (ordered newest first) with
// newest-wins semantics for duplicate keys, as the paper's iterative
// two-smallest-at-a-time pattern: because run sizes grow geometrically,
// the ladder costs O(k) element moves for k items in total. Each rung
// writes into one of the two scratch accumulators, alternating, so the
// whole ladder reuses capacity instead of allocating per rung; the
// returned slice aliases scratch (or runs[0] when there is nothing to
// merge) and must be copied out before the next merge.
//
//repro:allow scratchescape caller installs the returned run via installLevel before the next merge reuses scratch
func (c *GCOLA) mergeRuns(runs [][]entry, atBottom bool) []entry {
	if len(runs) == 0 {
		return nil
	}
	acc := runs[0]
	cur, next := &c.scratch.ping, &c.scratch.pong
	for _, older := range runs[1:] {
		*cur = c.mergeTwoInto((*cur)[:0], acc, older)
		acc = *cur
		cur, next = next, cur
	}
	if atBottom {
		w := 0
		for _, e := range acc {
			if e.kind == kindTombstone {
				continue
			}
			acc[w] = e
			w++
		}
		acc = acc[:w]
	}
	return acc
}

// mergeTwoInto merges newer over older, appending to out (which must
// not alias either input). Resolution for equal real keys:
//
//   - newer real over older real: update; the older copy is dropped and
//     the live count shrinks by one (Insert counted both copies).
//   - newer tombstone over older real: annihilation; the tombstone is
//     retained for still-older levels (Delete already adjusted the
//     count).
//   - real over tombstone (re-insert after delete) and tombstone over
//     tombstone: the older entry is simply dropped.
//
// Lookahead entries pass through untouched; only one input run ever
// carries them (the preserved target run).
func (c *GCOLA) mergeTwoInto(out, newer, older []entry) []entry {
	if need := len(out) + len(newer) + len(older); cap(out) < need {
		grown := make([]entry, len(out), need)
		copy(grown, out)
		out = grown
	}
	i, j := 0, 0
	for i < len(newer) && j < len(older) {
		a, b := newer[i], older[j]
		switch {
		case a.key < b.key:
			out = append(out, a)
			i++
		case a.key > b.key:
			out = append(out, b)
			j++
		default: // equal keys
			if a.kind == kindLookahead {
				out = append(out, a)
				i++
				continue
			}
			if b.kind == kindLookahead {
				out = append(out, b)
				j++
				continue
			}
			// Both real/tombstone: newer wins, older dropped.
			out = append(out, a)
			i++
			j++
			if a.kind != kindTombstone && b.kind != kindTombstone {
				c.n-- // duplicate insert reconciled
			}
		}
	}
	out = append(out, newer[i:]...)
	out = append(out, older[j:]...)
	return out
}

// Compact merges every level into a single level, dropping tombstones and
// duplicates, after which Len is exact for any preceding workload.
//
//repro:charges opt.Space (level reads + bottom write)
func (c *GCOLA) Compact() {
	totalReal := 0
	bottom := -1
	for l := range c.levels {
		lv := &c.levels[l]
		totalReal += lv.real
		if !lv.empty() {
			bottom = l
		}
	}
	if bottom < 0 {
		return
	}
	t := bottom
	for c.realCapacity(t) < totalReal {
		t++
	}
	c.ensureLevel(t)
	if c.spilledLevel(t) {
		// Any spilled source implies a spilled target (sources are at or
		// above bottom <= t), so this branch covers every out-of-core
		// compaction.
		c.compactSpilled(t, bottom)
		return
	}

	runs := c.scratch.runs[:0]
	for l := 0; l <= bottom; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			runs = append(runs, stripLookaheadInPlace(lv.data[lv.start:]))
		}
	}
	c.scratch.runs = runs
	out := c.mergeRuns(runs, true)
	for l := 0; l <= bottom; l++ {
		c.clearLevel(l)
	}
	c.installLevel(t, out)
	c.chargeWrite(t, c.levels[t].start, len(out))
	c.stats.Moves += uint64(len(out))
	c.n = len(out)
	c.distributePointers(t)
}
