package cola

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dam"
)

// DeamortizedLookahead is the fully deamortized COLA of Theorem 24: each
// level holds three arrays tagged shadow or visible, merges from a level
// whose two visible arrays are full proceed incrementally into a shadow
// array of the next level (preferring one pre-seeded with lookahead
// pointers), and after a merge completes its destination's lookahead
// pointers are copied back into an empty shadow array of the source
// level, "linking" that array to the destination. A shadow array becomes
// visible exactly when a chain of linked arrays reaches it from level 0;
// when a third array at some level would become visible, the two
// previously visible arrays revert to empty shadows (their contents are,
// by Lemma 23's ordering, already visible one level down).
//
// Queries only examine visible arrays, so no level ever appears to be in
// the middle of a merge. Inserts move at most Theta(log N) items plus
// copied pointers, giving an O(log N) worst-case insert while the
// amortized cost stays O((log N)/B) block transfers.
//
// Divergence from the paper, documented in DESIGN.md: the paper samples
// the next level's main and secondary arrays at densities 1/8 and 1/16;
// we maintain one pointer companion per merge destination at stride 8.
// Searches use pointer windows when the searched array is the one the
// window's anchors target, and fall back to whole-array binary search
// otherwise.
type DeamortizedLookahead struct {
	levels []dlaLevel
	n      int
	epoch  uint64
	stats  core.Stats
	space  *dam.Space

	offsets []int64
}

// pointerStride matches the paper's "every eighth element in the (k+1)st
// array also appears in the kth array".
const pointerStride = 8

type dlaLevel struct {
	slots [3]dlaArray
	merge *dlaMerge
}

type dlaArray struct {
	data    []entry
	visible bool
	spent   bool // already merged down; remains visible until demoted by the chain
	link    int  // slot index at the next level this array's pointers target; -1 if none
	epoch   uint64
}

func (a *dlaArray) occupied() bool { return len(a.data) > 0 }

// dlaMerge is the incremental state of a level's merge-and-link cycle:
// phase 0 merges the two visible source arrays (dropping their pointer
// entries) with the destination's pre-seeded pointer run; phase 1 copies
// every eighth cell of the destination back into backSlot.
type dlaMerge struct {
	srcNew, srcOld int // source slots, srcNew elementwise newer
	i, j, p        int // read positions: srcNew reals, srcOld reals, dst pointer run
	dst            int // destination slot at the next level
	ptrRun         []entry
	out            []entry
	phase          int
	copyPos        int // next cell of out to consider for sampling
	backSlot       int // slot at this level receiving copied pointers; -1 before phase 1
}

var (
	_ core.Dictionary = (*DeamortizedLookahead)(nil)
	_ core.Statser    = (*DeamortizedLookahead)(nil)
)

// NewDeamortizedLookahead returns an empty deamortized COLA with
// lookahead pointers, charging traffic to space (nil disables).
func NewDeamortizedLookahead(space *dam.Space) *DeamortizedLookahead {
	return &DeamortizedLookahead{space: space}
}

// Len implements core.Dictionary (exact for distinct keys; duplicate
// inserts reconcile when merges drop shadowed copies).
func (d *DeamortizedLookahead) Len() int { return d.n }

// Stats implements core.Statser.
func (d *DeamortizedLookahead) Stats() core.Stats { return d.stats }

// Levels reports the number of allocated levels.
func (d *DeamortizedLookahead) Levels() int { return len(d.levels) }

// arrayCapacity is the real-element capacity of one array at level k.
func arrayCapacity(k int) int { return 1 << k }

func (d *DeamortizedLookahead) ensureLevel(k int) {
	for len(d.levels) <= k {
		idx := len(d.levels)
		var off int64
		if idx > 0 {
			// Three arrays per level; pointer entries add at most a
			// 1/8 fraction, rounded up in the reserved region.
			prev := int64(arrayCapacity(idx-1)) * 3 * 2 * core.ElementBytes
			off = d.offsets[idx-1] + prev
		}
		lv := dlaLevel{}
		for s := range lv.slots {
			lv.slots[s].link = -1
		}
		d.levels = append(d.levels, lv)
		d.offsets = append(d.offsets, off)
	}
	// Level 0 arrays are always visible.
	d.levels[0].slots[0].visible = true
	d.levels[0].slots[1].visible = true
}

func (d *DeamortizedLookahead) slotOffset(k, s, i int) int64 {
	return d.offsets[k] + int64(s)*int64(arrayCapacity(k))*2*core.ElementBytes +
		int64(i)*core.ElementBytes
}

func (d *DeamortizedLookahead) chargeRead(k, s, i, n int) {
	if n > 0 {
		d.space.Read(d.slotOffset(k, s, i), int64(n)*core.ElementBytes)
	}
}

func (d *DeamortizedLookahead) chargeWrite(k, s, i, n int) {
	if n > 0 {
		d.space.Write(d.slotOffset(k, s, i), int64(n)*core.ElementBytes)
	}
}

// Insert implements core.Dictionary.
func (d *DeamortizedLookahead) Insert(key, value uint64) {
	d.stats.Inserts++
	d.ensureLevel(0)
	lv0 := &d.levels[0]
	slot := -1
	for s := 0; s < 2; s++ {
		if lv0.slots[s].visible && !lv0.slots[s].occupied() {
			slot = s
			break
		}
	}
	if slot < 0 {
		panic("cola: deamortized-lookahead level 0 overflow")
	}
	d.epoch++
	a := &lv0.slots[slot]
	if cap(a.data) < 1 {
		a.data = make([]entry, 0, 1)
	}
	a.data = append(a.data[:0], entry{key: key, val: value, kind: kindReal, left: -1})
	a.epoch = d.epoch
	d.chargeWrite(0, slot, 0, 1)
	d.n++

	budget := 4*len(d.levels) + 8
	moved := d.drain(budget)
	if uint64(moved) > d.stats.MaxMoves {
		d.stats.MaxMoves = uint64(moved)
	}
}

// drain advances merges left to right within the move budget.
func (d *DeamortizedLookahead) drain(budget int) int {
	moved := 0
	for k := 0; k < len(d.levels) && moved < budget; k++ {
		lv := &d.levels[k]
		if lv.merge == nil {
			if !d.unsafe(k) {
				continue
			}
			d.startMerge(k)
		}
		moved += d.stepMerge(k, budget-moved)
	}
	d.stats.Moves += uint64(moved)
	return moved
}

// unsafe reports whether level k has two occupied visible arrays whose
// contents have not already been merged down (the paper's "two of its
// arrays become full"; spent arrays linger visibly until the chain
// demotes them but must not merge twice).
func (d *DeamortizedLookahead) unsafe(k int) bool {
	lv := &d.levels[k]
	full := 0
	for s := range lv.slots {
		sl := &lv.slots[s]
		if sl.visible && sl.occupied() && !sl.spent {
			full++
		}
	}
	return full >= 2
}

// startMerge sets up the incremental merge of level k's two occupied
// visible arrays into a shadow slot of level k+1.
func (d *DeamortizedLookahead) startMerge(k int) {
	d.ensureLevel(k + 1)
	lv := &d.levels[k]
	next := &d.levels[k+1]

	srcs := make([]int, 0, 2)
	for s := range lv.slots {
		sl := &lv.slots[s]
		if sl.visible && sl.occupied() && !sl.spent {
			srcs = append(srcs, s)
		}
	}
	if len(srcs) != 2 {
		panic("cola: startMerge without two full visible arrays")
	}
	srcNew, srcOld := srcs[0], srcs[1]
	if lv.slots[srcOld].epoch > lv.slots[srcNew].epoch {
		srcNew, srcOld = srcOld, srcNew
	}

	// Pick a shadow destination, preferring one already containing
	// lookahead pointers; it must not be the destination or back slot of
	// an in-flight neighbouring merge (Lemma 21's pacing guarantees one
	// exists).
	dst := -1
	for s := range next.slots {
		sl := &next.slots[s]
		if sl.visible || d.slotBusy(k+1, s) {
			continue
		}
		if dst < 0 {
			dst = s
			continue
		}
		if sl.occupied() && !next.slots[dst].occupied() {
			dst = s // pointer-seeded beats empty
		}
	}
	if dst < 0 {
		panic("cola: no shadow destination for deamortized-lookahead merge")
	}

	var ptrRun []entry
	if next.slots[dst].occupied() {
		ptrRun = next.slots[dst].data
	}
	capacity := 2*arrayCapacity(k) + len(ptrRun)
	lv.merge = &dlaMerge{
		srcNew:   srcNew,
		srcOld:   srcOld,
		dst:      dst,
		ptrRun:   ptrRun,
		out:      make([]entry, 0, capacity),
		backSlot: -1,
	}
}

// slotBusy reports whether slot s of level k is the destination or the
// pointer-copy target of an in-flight merge.
func (d *DeamortizedLookahead) slotBusy(k, s int) bool {
	if k > 0 {
		if m := d.levels[k-1].merge; m != nil && m.dst == s {
			return true
		}
	}
	if m := d.levels[k].merge; m != nil && m.backSlot == s {
		return true
	}
	return false
}

// realsOf filters pointer entries out of a source array lazily during the
// merge: source pointer entries target arrays that are being replaced, so
// they are skipped rather than copied.
func skipLA(data []entry, i int) int {
	for i < len(data) && data[i].kind == kindLookahead {
		i++
	}
	return i
}

// stepMerge advances level k's merge by at most budget moves.
func (d *DeamortizedLookahead) stepMerge(k, budget int) int {
	lv := &d.levels[k]
	m := lv.merge
	moved := 0
	if m.phase == 0 {
		moved += d.stepMergePhase(k, m, budget)
	}
	if m.phase == 1 && moved < budget {
		moved += d.stepCopyPhase(k, m, budget-moved)
	}
	return moved
}

// stepMergePhase three-way merges srcNew reals, srcOld reals, and the
// destination's pre-seeded pointer run.
func (d *DeamortizedLookahead) stepMergePhase(k int, m *dlaMerge, budget int) int {
	lv := &d.levels[k]
	a := lv.slots[m.srcNew].data
	b := lv.slots[m.srcOld].data
	moved := 0
	for moved < budget {
		m.i = skipLA(a, m.i)
		m.j = skipLA(b, m.j)
		ai, bj, pp := m.i < len(a), m.j < len(b), m.p < len(m.ptrRun)
		if !ai && !bj && !pp {
			break
		}
		// Choose the smallest key; pointer entries first on ties so real
		// entries follow their anchors.
		const inf = ^uint64(0)
		ka, kb, kp := inf, inf, inf
		if ai {
			ka = a[m.i].key
		}
		if bj {
			kb = b[m.j].key
		}
		if pp {
			kp = m.ptrRun[m.p].key
		}
		switch {
		case pp && kp <= ka && kp <= kb:
			m.out = append(m.out, m.ptrRun[m.p])
			m.p++
		case ai && ka <= kb:
			if bj && ka == kb {
				// Duplicate real key across the sources: newer wins.
				if a[m.i].kind != kindTombstone && b[m.j].kind != kindTombstone {
					d.n--
				}
				m.j++
			}
			m.out = append(m.out, a[m.i])
			d.chargeRead(k, m.srcNew, m.i, 1)
			m.i++
		default:
			m.out = append(m.out, b[m.j])
			d.chargeRead(k, m.srcOld, m.j, 1)
			m.j++
		}
		d.chargeWrite(k+1, m.dst, len(m.out)-1, 1)
		moved++
	}
	if skipLA(a, m.i) >= len(a) && skipLA(b, m.j) >= len(b) && m.p >= len(m.ptrRun) {
		m.phase = 1
		// Pick an empty shadow slot at this level for the copied-back
		// pointers. Level 0 skips pointer copying (its arrays hold one
		// element) but still links, making the destination's chain
		// condition reachable.
		m.backSlot = d.pickBackSlot(k)
	}
	return moved
}

// pickBackSlot selects the slot at level k that will hold pointers copied
// back from the merge destination.
func (d *DeamortizedLookahead) pickBackSlot(k int) int {
	lv := &d.levels[k]
	for s := range lv.slots {
		sl := &lv.slots[s]
		if !sl.visible && !sl.occupied() && !d.slotBusy(k, s) {
			return s
		}
	}
	// All shadow slots hold stale pointers; reuse the stalest.
	for s := range lv.slots {
		sl := &lv.slots[s]
		if !sl.visible && !d.slotBusy(k, s) {
			sl.data = sl.data[:0]
			sl.link = -1
			return s
		}
	}
	panic("cola: no back slot available for pointer copy")
}

// stepCopyPhase samples every pointerStride-th cell of the completed
// destination into the back slot; on completion it links, installs, and
// updates visibility along the chain from level 0.
func (d *DeamortizedLookahead) stepCopyPhase(k int, m *dlaMerge, budget int) int {
	lv := &d.levels[k]
	moved := 0
	if k > 0 {
		back := &lv.slots[m.backSlot]
		for moved < budget && m.copyPos < len(m.out) {
			// Sample the last cell of each stride-sized group.
			end := m.copyPos + pointerStride - 1
			if end >= len(m.out) {
				end = len(m.out) - 1
			}
			e := m.out[end]
			back.data = append(back.data, entry{
				key:  e.key,
				ptr:  int32(end),
				left: int32(end),
				kind: kindLookahead,
			})
			d.chargeRead(k+1, m.dst, end, 1)
			d.chargeWrite(k, m.backSlot, len(back.data)-1, 1)
			m.copyPos = end + 1
			moved++
		}
		if m.copyPos < len(m.out) {
			return moved
		}
	}
	d.finishMerge(k, m)
	return moved
}

// finishMerge installs the destination array, establishes the link, and
// propagates visibility along the linked chain.
func (d *DeamortizedLookahead) finishMerge(k int, m *dlaMerge) {
	lv := &d.levels[k]
	next := &d.levels[k+1]

	d.epoch++
	dstArr := &next.slots[m.dst]
	dstArr.data = m.out
	dstArr.epoch = d.epoch
	fixLeftCopiesSlice(dstArr.data)

	if k == 0 {
		// Level 0's arrays link directly (no pointers to copy), the
		// destination becomes visible in the same propagation pass, so
		// the sources can be emptied immediately with no visibility gap.
		lv.slots[0].link = m.dst
		lv.slots[1].link = m.dst
		lv.slots[m.srcNew].data = lv.slots[m.srcNew].data[:0]
		lv.slots[m.srcOld].data = lv.slots[m.srcOld].data[:0]
	} else {
		back := &lv.slots[m.backSlot]
		back.link = m.dst
		back.epoch = d.epoch
		fixLeftCopiesSlice(back.data)
		// The sources stay visible (queries must keep seeing their
		// contents until the destination's chain completes) but must
		// never merge down a second time.
		lv.slots[m.srcNew].spent = true
		lv.slots[m.srcOld].spent = true
	}

	lv.merge = nil
	d.propagateVisibility()
}

// fixLeftCopiesSlice recomputes each cell's copy of the nearest lookahead
// pointer to its left.
func fixLeftCopiesSlice(data []entry) {
	last := int32(-1)
	for i := range data {
		if data[i].kind == kindLookahead {
			last = data[i].ptr
			data[i].left = data[i].ptr
		} else {
			data[i].left = last
		}
	}
}

// propagateVisibility walks the linked chain from level 0 and makes every
// shadow array on it visible, applying the paper's rule: when a third
// array at a level becomes visible, the other two become empty shadows
// (their contents already live, visibly, one level down).
func (d *DeamortizedLookahead) propagateVisibility() {
	if len(d.levels) == 0 {
		return
	}
	cur := d.levels[0].slots[0].link // both level-0 slots share their link
	for k := 1; k < len(d.levels) && cur >= 0; k++ {
		sl := &d.levels[k].slots[cur]
		if !sl.visible {
			d.makeVisible(k, cur)
		}
		cur = sl.link
	}
}

// makeVisible flips slot s of level k to visible, demoting previously
// visible arrays when this is the third.
func (d *DeamortizedLookahead) makeVisible(k, s int) {
	lv := &d.levels[k]
	var others []int
	for o := range lv.slots {
		if o != s && lv.slots[o].visible {
			others = append(others, o)
		}
	}
	lv.slots[s].visible = true
	if len(others) == 2 {
		for _, o := range others {
			if !lv.slots[o].spent {
				// The demoted pair must already live one level down
				// (Lemma 23); demoting an unmerged array would lose data.
				panic("cola: demoting an unspent visible array")
			}
			lv.slots[o].visible = false
			lv.slots[o].spent = false
			lv.slots[o].data = lv.slots[o].data[:0]
			lv.slots[o].link = -1
		}
	}
}

// Search implements core.Dictionary: visible arrays only, levels newest
// to oldest, windows carried through lookahead pointers when the searched
// array is the one the window's anchors target.
func (d *DeamortizedLookahead) Search(key uint64) (uint64, bool) {
	d.stats.Searches++
	// window bounds apply to (level wk, slot wslot).
	wlo, whi, wslot := -1, -1, -1
	var ord [3]int
	for k := 0; k < len(d.levels); k++ {
		nextLo, nextHi, nextSlot := -1, -1, -1
		for _, s := range ord[:d.visibleNewestFirst(k, &ord)] {
			lo, hi := -1, -1
			if s == wslot {
				lo, hi = wlo, whi
			}
			val, state, nlo, nhi, nslot := d.searchArray(k, s, key, lo, hi)
			switch state {
			case foundReal:
				return val, true
			case foundTombstone:
				return 0, false
			}
			if nslot >= 0 && nextSlot < 0 {
				nextLo, nextHi, nextSlot = nlo, nhi, nslot
			}
		}
		wlo, whi, wslot = nextLo, nextHi, nextSlot
	}
	return 0, false
}

// visibleNewestFirst writes the visible, occupied slots of level k into
// ord in decreasing epoch order and returns their count. A level has at
// most three slots, so the buffer fits on the caller's stack and the
// ordering is a stable insertion sort — the read path allocates
// nothing. Equal epochs keep slot-index order, matching the stable
// small-slice sort this replaced, so the charge stream is unchanged.
func (d *DeamortizedLookahead) visibleNewestFirst(k int, ord *[3]int) int {
	lv := &d.levels[k]
	cnt := 0
	for s := range lv.slots {
		if lv.slots[s].visible && lv.slots[s].occupied() {
			ord[cnt] = s
			cnt++
		}
	}
	for i := 1; i < cnt; i++ {
		for j := i; j > 0 && lv.slots[ord[j]].epoch > lv.slots[ord[j-1]].epoch; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return cnt
}

// searchArray searches slot s of level k within [lo, hi) (-1 = unknown)
// and derives a window for the array this slot links to.
func (d *DeamortizedLookahead) searchArray(k, s int, key uint64, lo, hi int) (uint64, searchState, int, int, int) {
	sl := &d.levels[k].slots[s]
	data := sl.data
	if lo < 0 {
		lo = 0
	}
	if hi < 0 || hi > len(data) {
		hi = len(data)
	}
	if lo > hi {
		lo = hi
	}
	// Probes are charged at their actual (key-dependent) positions so
	// the cache sees the real divergent probe paths of distinct
	// searches; see GCOLA.lowerBound.
	pos := lo + sort.Search(hi-lo, func(i int) bool {
		d.chargeRead(k, s, lo+i, 1)
		return data[lo+i].key >= key
	})

	state := notFound
	var val uint64
	for i := pos; i < len(data) && data[i].key == key; i++ {
		d.chargeRead(k, s, i, 1)
		switch data[i].kind {
		case kindReal:
			val, state = data[i].val, foundReal
		case kindTombstone:
			state = foundTombstone
		case kindLookahead:
			continue
		}
		break
	}
	if state != notFound {
		return val, state, -1, -1, -1
	}
	if sl.link < 0 {
		return 0, notFound, -1, -1, -1
	}
	nlo := -1
	if pos > 0 {
		nlo = int(data[pos-1].left)
	}
	nhi := -1
	for i := pos; i < len(data); i++ {
		d.chargeRead(k, s, i, 1)
		if data[i].kind == kindLookahead {
			nhi = int(data[i].ptr) + 1
			break
		}
	}
	return 0, notFound, nlo, nhi, sl.link
}

// dlaCursor is one visible array's position in a Range merge; the
// per-call cursor slices are pooled (see dlaCursorPool) like
// GCOLA.Range's.
type dlaCursor struct {
	data  []entry
	pos   int
	epoch uint64
}

type dlaCursorBuf struct {
	c []dlaCursor
}

var dlaCursorPool = sync.Pool{New: func() any { return new(dlaCursorBuf) }}

// Range implements core.Dictionary by k-way merging all visible arrays.
func (d *DeamortizedLookahead) Range(lo, hi uint64, fn func(core.Element) bool) {
	cb := dlaCursorPool.Get().(*dlaCursorBuf)
	defer func() {
		cb.c = cb.c[:0]
		dlaCursorPool.Put(cb)
	}()
	cursors := cb.c[:0]
	var ord [3]int
	for k := range d.levels {
		for _, s := range ord[:d.visibleNewestFirst(k, &ord)] {
			sl := &d.levels[k].slots[s]
			p := sort.Search(len(sl.data), func(i int) bool {
				d.chargeRead(k, s, i, 1)
				return sl.data[i].key >= lo
			})
			if p < len(sl.data) {
				cursors = append(cursors, dlaCursor{data: sl.data, pos: p, epoch: sl.epoch})
			}
		}
	}
	cb.c = cursors
	for {
		best := -1
		var bestKey uint64
		for i := range cursors {
			cur := &cursors[i]
			for cur.pos < len(cur.data) && cur.data[cur.pos].kind == kindLookahead {
				cur.pos++
			}
			if cur.pos >= len(cur.data) {
				continue
			}
			k := cur.data[cur.pos].key
			if k > hi {
				continue
			}
			if best < 0 || k < bestKey ||
				(k == bestKey && cur.epoch > cursors[best].epoch) {
				best = i
				bestKey = k
			}
		}
		if best < 0 {
			return
		}
		e := cursors[best].data[cursors[best].pos]
		for i := range cursors {
			cur := &cursors[i]
			for cur.pos < len(cur.data) && cur.data[cur.pos].key == bestKey {
				cur.pos++
			}
		}
		if e.kind == kindTombstone {
			continue
		}
		if !fn(core.Element{Key: e.key, Value: e.val}) {
			return
		}
	}
}

// unsafeLevelFlags reports per-level unsafe status for invariant tests.
func (d *DeamortizedLookahead) unsafeLevelFlags() []bool {
	out := make([]bool, len(d.levels))
	for k := range d.levels {
		out[k] = d.levels[k].merge != nil || d.unsafe(k)
	}
	return out
}
