package cola

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

// openSpilled returns a spilled GCOLA over a test temp dir, closed on
// cleanup, with a deliberately tiny page cache so reads actually hit
// the files.
func openSpilled(t *testing.T, opt Options) *GCOLA {
	t.Helper()
	opt.SpillDir = t.TempDir()
	if opt.SpillDepth == 0 {
		opt.SpillDepth = 3
	}
	if opt.SpillCacheBytes == 0 {
		opt.SpillCacheBytes = 1 // floored to extmem.MinCacheChunks chunks
	}
	c, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return c
}

// TestSpillParityWithRAM drives an identical mixed workload through an
// in-RAM and a spilled GCOLA, each charging its own DAM store with the
// same geometry, and requires identical observable behaviour AND a
// bit-identical predicted transfer count: the spill mode must change
// where bytes live, never what the DAM model charges.
func TestSpillParityWithRAM(t *testing.T) {
	ramStore := dam.NewStore(4096, 1<<15)
	spillStore := dam.NewStore(4096, 1<<15)
	ram := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity, Space: ramStore.Space("cola")})
	sp := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity, Space: spillStore.Space("cola")})

	const n = 5000
	seq := workload.NewRandomUnique(7)
	keys := make([]uint64, 0, n)
	run := func(f func(c *GCOLA)) {
		f(ram)
		f(sp)
	}
	for i := 0; i < n; i++ {
		k := seq.Next()
		keys = append(keys, k)
		run(func(c *GCOLA) { c.Insert(k, k+1) })
		// Sprinkle in duplicate updates, deletes, and point reads.
		switch i % 97 {
		case 13:
			run(func(c *GCOLA) { c.Insert(keys[i/2], 42) })
		case 31:
			run(func(c *GCOLA) { c.Delete(keys[i/3]) })
		case 59:
			run(func(c *GCOLA) { c.Search(keys[i/4]) })
		}
	}
	sp.checkInvariants()
	ram.checkInvariants()

	if ram.Len() != sp.Len() {
		t.Fatalf("Len: ram %d, spilled %d", ram.Len(), sp.Len())
	}
	for _, k := range keys {
		rv, rok := ram.Search(k)
		sv, sok := sp.Search(k)
		if rv != sv || rok != sok {
			t.Fatalf("Search(%d): ram (%d,%v), spilled (%d,%v)", k, rv, rok, sv, sok)
		}
	}
	// Full range scans must agree element for element.
	var got, want []core.Element
	ram.Range(0, ^uint64(0), func(e core.Element) bool { want = append(want, e); return true })
	sp.Range(0, ^uint64(0), func(e core.Element) bool { got = append(got, e); return true })
	if len(got) != len(want) {
		t.Fatalf("Range: ram %d elements, spilled %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range[%d]: ram %+v, spilled %+v", i, want[i], got[i])
		}
	}
	// The DAM prediction must not depend on where levels live.
	if ramStore.Transfers() != spillStore.Transfers() {
		t.Fatalf("predicted transfers diverge: ram %d, spilled %d",
			ramStore.Transfers(), spillStore.Transfers())
	}
	// The spilled structure really is out of core: files on disk, actual
	// chunk I/O performed.
	files, bytes, err := sp.SpillFileStats()
	if err != nil {
		t.Fatalf("SpillFileStats: %v", err)
	}
	if files == 0 || bytes == 0 {
		t.Fatalf("spilled structure has no spill files (files=%d bytes=%d)", files, bytes)
	}
	reads, writes := sp.ActualTransfers()
	if reads == 0 || writes == 0 {
		t.Fatalf("spilled structure performed no actual I/O (reads=%d writes=%d)", reads, writes)
	}
	if r, w := ram.ActualTransfers(); r != 0 || w != 0 {
		t.Fatalf("in-RAM structure reports actual I/O (reads=%d writes=%d)", r, w)
	}

	// Compact must agree too (it exercises the spilled bottom-merge path).
	run(func(c *GCOLA) { c.Compact() })
	sp.checkInvariants()
	if ram.Len() != sp.Len() {
		t.Fatalf("Len after Compact: ram %d, spilled %d", ram.Len(), sp.Len())
	}
	if ramStore.Transfers() != spillStore.Transfers() {
		t.Fatalf("predicted transfers diverge after Compact: ram %d, spilled %d",
			ramStore.Transfers(), spillStore.Transfers())
	}
}

// TestSpillAnnihilationEmptiesLevels deletes every key and compacts: the
// all-tombstone bottom merge must leave the spilled structure empty with
// no leftover level images.
func TestSpillAnnihilationEmptiesLevels(t *testing.T) {
	c := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	const n = 300
	for i := uint64(0); i < n; i++ {
		c.Insert(i, i)
	}
	files, _, _ := c.SpillFileStats()
	if files == 0 {
		t.Fatal("workload too small to spill; raise n")
	}
	for i := uint64(0); i < n; i++ {
		if !c.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	c.Compact()
	c.checkInvariants()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", c.Len())
	}
	files, bytes, err := c.SpillFileStats()
	if err != nil {
		t.Fatalf("SpillFileStats: %v", err)
	}
	if files != 0 || bytes != 0 {
		t.Fatalf("annihilating compaction left %d spill files (%d bytes)", files, bytes)
	}
	// The structure remains usable.
	c.Insert(1, 2)
	if v, ok := c.Search(1); !ok || v != 2 {
		t.Fatalf("Search after re-insert = (%d,%v)", v, ok)
	}
}

// TestSpillBulkLoad bulk-loads enough elements to land the install in a
// spilled level directly.
func TestSpillBulkLoad(t *testing.T) {
	c := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	elems := make([]core.Element, 0, 2000)
	for i := uint64(0); i < 2000; i++ {
		elems = append(elems, core.Element{Key: i * 3, Value: i})
	}
	c.InsertBatch(elems)
	c.checkInvariants()
	if c.Len() != len(elems) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(elems))
	}
	if files, _, _ := c.SpillFileStats(); files == 0 {
		t.Fatal("bulk load of 2000 elements did not spill")
	}
	for _, e := range elems {
		if v, ok := c.Search(e.Key); !ok || v != e.Value {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,true)", e.Key, v, ok, e.Value)
		}
	}
}

// TestSpillSnapshotRoundTrip checks that snapshot bytes do not depend on
// where levels live and that a snapshot loads correctly into either
// home: RAM->spilled, spilled->RAM, spilled->spilled.
func TestSpillSnapshotRoundTrip(t *testing.T) {
	ram := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	sp := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	seq := workload.NewRandomUnique(11)
	keys := make([]uint64, 0, 3000)
	for i := 0; i < 3000; i++ {
		k := seq.Next()
		keys = append(keys, k)
		ram.Insert(k, k^7)
		sp.Insert(k, k^7)
	}
	var ramBuf, spBuf bytes.Buffer
	if _, err := ram.WriteTo(&ramBuf); err != nil {
		t.Fatalf("ram WriteTo: %v", err)
	}
	if _, err := sp.WriteTo(&spBuf); err != nil {
		t.Fatalf("spilled WriteTo: %v", err)
	}
	if !bytes.Equal(ramBuf.Bytes(), spBuf.Bytes()) {
		t.Fatal("snapshot bytes differ between RAM and spilled structures")
	}

	check := func(name string, c *GCOLA) {
		t.Helper()
		c.checkInvariants()
		if c.Len() != ram.Len() {
			t.Fatalf("%s: Len = %d, want %d", name, c.Len(), ram.Len())
		}
		for _, k := range keys[:200] {
			if v, ok := c.Search(k); !ok || v != k^7 {
				t.Fatalf("%s: Search(%d) = (%d,%v)", name, k, v, ok)
			}
		}
	}
	intoRAM := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	if _, err := intoRAM.ReadFrom(bytes.NewReader(spBuf.Bytes())); err != nil {
		t.Fatalf("spilled->RAM ReadFrom: %v", err)
	}
	check("spilled->RAM", intoRAM)

	intoSpill := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	if _, err := intoSpill.ReadFrom(bytes.NewReader(ramBuf.Bytes())); err != nil {
		t.Fatalf("RAM->spilled ReadFrom: %v", err)
	}
	check("RAM->spilled", intoSpill)
	if files, _, _ := intoSpill.SpillFileStats(); files == 0 {
		t.Fatal("loading a deep snapshot into a spilled structure created no spill files")
	}

	// A failed load must leave no spill files behind.
	trunc := spBuf.Bytes()[:spBuf.Len()-13]
	broken := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	if _, err := broken.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	if files, _, _ := broken.SpillFileStats(); files != 0 {
		t.Fatalf("failed ReadFrom left %d spill files behind", files)
	}
}

// TestSpillSharedReadStress runs bracketed concurrent searches and range
// scans over a spilled structure under the race detector: the frozen
// page cache and the atomic I/O counters must hold up.
func TestSpillSharedReadStress(t *testing.T) {
	c := openSpilled(t, Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	const n = 4000
	seq := workload.NewRandomUnique(13)
	keys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		k := seq.Next()
		keys = append(keys, k)
		c.Insert(k, k+1)
	}
	c.BeginSharedReads()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 1
			for i := 0; i < 500; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				k := keys[int(x>>33)%len(keys)]
				if v, ok := c.Search(k); !ok || v != k+1 {
					t.Errorf("Search(%d) = (%d,%v) during epoch", k, v, ok)
					return
				}
				if i%50 == 0 {
					c.Range(k, k+1000, func(core.Element) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()
	c.EndSharedReads()
	c.checkInvariants()
}

// TestSpillOpenValidation covers the spill configuration errors.
func TestSpillOpenValidation(t *testing.T) {
	if _, err := Open(Options{Growth: 2, SpillDepth: 3}); err == nil {
		t.Fatal("accepted a spill depth without a spill directory")
	}
	if _, err := Open(Options{Growth: 2, SpillCacheBytes: 1 << 20}); err == nil {
		t.Fatal("accepted a spill cache budget without a spill directory")
	}
	if _, err := Open(Options{Growth: 2, SpillDir: t.TempDir(), SpillDepth: -1}); err == nil {
		t.Fatal("accepted a negative spill depth")
	}
	c, err := Open(Options{Growth: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open with defaults: %v", err)
	}
	if c.opt.SpillDepth != DefaultSpillDepth || c.opt.SpillCacheBytes != DefaultSpillCacheBytes {
		t.Fatalf("defaults not applied: depth=%d cache=%d", c.opt.SpillDepth, c.opt.SpillCacheBytes)
	}
	if !c.Spilled() {
		t.Fatal("Spilled() = false for a spill-configured structure")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

// TestSpillCloseRemovesDir verifies Close tears down the private spill
// directory.
func TestSpillCloseRemovesDir(t *testing.T) {
	parent := t.TempDir()
	c, err := Open(Options{Growth: 2, SpillDir: parent, SpillDepth: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := uint64(0); i < 500; i++ {
		c.Insert(i, i)
	}
	dir := c.ext.Dir()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survives Close (stat err %v)", dir, err)
	}
}
