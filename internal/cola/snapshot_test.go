package cola

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

func TestBulkLoadBasics(t *testing.T) {
	c := NewCOLA(nil)
	elems := []core.Element{{Key: 5, Value: 50}, {Key: 1, Value: 10}, {Key: 3, Value: 30}}
	c.BulkLoad(elems)
	c.checkInvariants()
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	for _, e := range elems {
		if v, ok := c.Search(e.Key); !ok || v != e.Value {
			t.Fatalf("Search(%d) = (%d,%v)", e.Key, v, ok)
		}
	}
}

func TestBulkLoadDeduplicatesNewestWins(t *testing.T) {
	c := NewCOLA(nil)
	c.BulkLoad([]core.Element{{Key: 7, Value: 1}, {Key: 7, Value: 2}, {Key: 7, Value: 3}})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Search(7); v != 3 {
		t.Fatalf("Search(7) = %d, want 3 (last wins)", v)
	}
}

func TestBulkLoadThenInsertInteroperate(t *testing.T) {
	c := NewCOLA(nil)
	var elems []core.Element
	seq := workload.NewRandomUnique(61)
	const n = 5000
	for i := 0; i < n; i++ {
		k := seq.Next()
		elems = append(elems, core.Element{Key: k, Value: k ^ 9})
	}
	c.BulkLoad(elems)
	c.checkInvariants()
	// Continue with ordinary inserts.
	more := workload.NewRandomUnique(62)
	for i := 0; i < 1000; i++ {
		k := more.Next() | 1<<63
		c.Insert(k, k)
	}
	c.checkInvariants()
	if c.Len() != n+1000 {
		t.Fatalf("Len = %d, want %d", c.Len(), n+1000)
	}
	for _, e := range elems[:200] {
		if v, ok := c.Search(e.Key); !ok || v != e.Value {
			t.Fatalf("bulk key lost: Search(%d) = (%d,%v)", e.Key, v, ok)
		}
	}
}

func TestBulkLoadEmptyAndPanics(t *testing.T) {
	c := NewCOLA(nil)
	c.BulkLoad(nil) // no-op
	if c.Len() != 0 {
		t.Fatal("empty bulk load changed Len")
	}
	c.Insert(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for BulkLoad into non-empty structure")
		}
	}()
	c.BulkLoad([]core.Element{{Key: 2}})
}

// TestInsertBatchFastAndSlowPaths covers core.BatchInserter: the
// bulk-load fast path on an empty structure (caller slice untouched),
// the insert-loop fallback on a non-empty one, and identical visible
// state either way.
func TestInsertBatchFastAndSlowPaths(t *testing.T) {
	mkBatch := func() []core.Element {
		var elems []core.Element
		seq := workload.NewRandomUnique(63)
		for i := 0; i < 3000; i++ {
			k := seq.Next()
			elems = append(elems, core.Element{Key: k, Value: k ^ 5})
		}
		elems = append(elems, core.Element{Key: elems[0].Key, Value: 999}) // dup, last wins
		return elems
	}

	fast := NewCOLA(nil)
	batch := mkBatch()
	orig := append([]core.Element(nil), batch...)
	fast.InsertBatch(batch)
	fast.checkInvariants()
	for i := range batch {
		if batch[i] != orig[i] {
			t.Fatal("InsertBatch mutated the caller's slice")
		}
	}

	slow := NewCOLA(nil)
	slow.Insert(1<<62, 42) // non-empty: forces the loop fallback
	slow.InsertBatch(mkBatch())
	slow.checkInvariants()

	if v, _ := fast.Search(orig[0].Key); v != 999 {
		t.Fatalf("fast path duplicate: Search = %d, want 999", v)
	}
	if v, _ := slow.Search(orig[0].Key); v != 999 {
		t.Fatalf("slow path duplicate: Search = %d, want 999", v)
	}
	for _, e := range orig[1:200] {
		fv, fok := fast.Search(e.Key)
		sv, sok := slow.Search(e.Key)
		if !fok || !sok || fv != e.Value || sv != e.Value {
			t.Fatalf("paths disagree at %d: fast (%d,%v), slow (%d,%v)", e.Key, fv, fok, sv, sok)
		}
	}
	// The fast path dedups while installing, so Len is exact; the loop
	// path may overcount the in-batch duplicate until a merge reconciles
	// it (the documented Len approximation).
	if fast.Len() != 3000 {
		t.Fatalf("fast path Len = %d, want 3000", fast.Len())
	}
	if slow.Len() < 3001 {
		t.Fatalf("slow path Len = %d, want >= 3001", slow.Len())
	}
	if st := fast.Stats(); st.Inserts != 3001 {
		t.Fatalf("fast path Stats.Inserts = %d, want 3001 (elements ingested)", st.Inserts)
	}
}

// TestSnapshotLevelLimitCoversHarnessEnvelope pins the arithmetic the
// decode ceiling relies on: the top level of the largest supported
// workload (2^28 elements, the harness's -logn ceiling) at the maximum
// pointer density must fit under maxSnapshotLevelCells, or WriteTo and
// ReadFrom would refuse snapshots of legitimate structures.
func TestSnapshotLevelLimitCoversHarnessEnvelope(t *testing.T) {
	c := New(Options{Growth: 2, PointerDensity: 0.5})
	if got := c.totalCapacity(28); got > maxSnapshotLevelCells {
		t.Fatalf("totalCapacity(28) at max density = %d cells, over the %d decode limit", got, maxSnapshotLevelCells)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCOLA(nil)
	seq := workload.NewRandomUnique(71)
	const n = 4000
	keys := workload.Take(seq, n)
	for _, k := range keys {
		c.Insert(k, k^0xBEEF)
	}
	c.Delete(keys[0])
	c.Insert(keys[1], 999)

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	restored := NewCOLA(nil)
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	restored.checkInvariants()
	if restored.Len() != c.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), c.Len())
	}
	for _, k := range keys {
		v1, ok1 := c.Search(k)
		v2, ok2 := restored.Search(k)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("restored Search(%d) = (%d,%v), original (%d,%v)", k, v2, ok2, v1, ok1)
		}
	}
	// The restored structure keeps working.
	restored.Insert(1<<62, 42)
	if v, ok := restored.Search(1 << 62); !ok || v != 42 {
		t.Fatal("restored structure rejects inserts")
	}
}

func TestSnapshotRejectsMismatchedConfig(t *testing.T) {
	c := New(Options{Growth: 4, PointerDensity: 0.1})
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wrongGrowth := New(Options{Growth: 2, PointerDensity: 0.1})
	if _, err := wrongGrowth.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadFrom accepted a snapshot with mismatched growth")
	}
	wrongDensity := New(Options{Growth: 4, PointerDensity: 0.2})
	if _, err := wrongDensity.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadFrom accepted a snapshot with mismatched density")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	c := NewCOLA(nil)
	if _, err := c.ReadFrom(strings.NewReader("NOTACOLA snapshot")); err == nil {
		t.Fatal("accepted bad magic")
	}
	c2 := NewCOLA(nil)
	if _, err := c2.ReadFrom(strings.NewReader("CO")); err == nil {
		t.Fatal("accepted truncated magic")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 500; i++ {
		c.Insert(i, i)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, len(data) / 2, len(data) - 3} {
		r := NewCOLA(nil)
		if _, err := r.ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("accepted snapshot truncated at %d/%d bytes", cut, len(data))
		}
	}
}

func TestSnapshotIntoNonEmptyFails(t *testing.T) {
	c := NewCOLA(nil)
	c.Insert(1, 1)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCOLA(nil)
	dst.Insert(2, 2)
	if _, err := dst.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadFrom into non-empty structure succeeded")
	}
}

func TestSnapshotInterfaces(t *testing.T) {
	var _ io.WriterTo = (*GCOLA)(nil)
	var _ io.ReaderFrom = (*GCOLA)(nil)
}

// snapshotOf serializes a small populated COLA for corruption tests.
func snapshotOf(t *testing.T, n int) []byte {
	t.Helper()
	c := NewCOLA(nil)
	for i := uint64(0); i < uint64(n); i++ {
		c.Insert(i*2654435761, i)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTypedErrors pins the error taxonomy: wrong magic is
// ErrBadMagic, an unknown version is ErrBadVersion, and everything
// structurally wrong past the preamble is ErrCorrupt.
func TestSnapshotTypedErrors(t *testing.T) {
	data := snapshotOf(t, 600)

	bad := append([]byte(nil), data...)
	copy(bad, "XXXX")
	if _, err := NewCOLA(nil).ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wrong magic: got %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), data...)
	bad[4] = 99 // version field
	if _, err := NewCOLA(nil).ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("wrong version: got %v, want ErrBadVersion", err)
	}

	for _, cut := range []int{3, 10, 30, len(data) / 2, len(data) - 1} {
		if _, err := NewCOLA(nil).ReadFrom(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestSnapshotRejectsCorruptStructure flips structure-level fields —
// entry kinds, occupancy, level count, live count — and demands a
// typed, panic-free rejection for each.
func TestSnapshotRejectsCorruptStructure(t *testing.T) {
	data := snapshotOf(t, 600)
	// Field offsets: magic 4 | version 4 | growth 4 | density 8 | n 8 |
	// levelCount 4 = byte 32, then per-level start/used.
	mutate := func(name string, f func(b []byte)) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), data...)
			f(b)
			c := NewCOLA(nil)
			if _, err := c.ReadFrom(bytes.NewReader(b)); err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			// No partial mutation: the failed receiver is still empty and
			// fully usable.
			if c.Len() != 0 || len(c.levels) != 0 {
				t.Fatalf("failed ReadFrom mutated receiver: Len=%d levels=%d", c.Len(), len(c.levels))
			}
			c.Insert(42, 1)
			if v, ok := c.Search(42); !ok || v != 1 {
				t.Fatal("receiver unusable after failed ReadFrom")
			}
			c.checkInvariants()
		})
	}
	mutate("huge level count", func(b []byte) {
		binary.LittleEndian.PutUint32(b[28:32], 1<<30)
	})
	mutate("level count past limit", func(b []byte) {
		binary.LittleEndian.PutUint32(b[28:32], maxSnapshotLevels+1)
	})
	mutate("occupancy mismatch", func(b []byte) {
		// Level 0 header directly follows at byte 32: start u32 | used u32.
		binary.LittleEndian.PutUint32(b[32:36], 7)
	})
	mutate("negative live count", func(b []byte) {
		binary.LittleEndian.PutUint64(b[20:28], ^uint64(0)) // -1
	})
	mutate("live count above stored entries", func(b []byte) {
		binary.LittleEndian.PutUint64(b[20:28], 1<<40)
	})
}

// TestSnapshotRejectsBadEntryKind corrupts one entry's kind byte (the
// last byte of the first stored cell) and checks the typed rejection.
func TestSnapshotRejectsBadEntryKind(t *testing.T) {
	c := NewCOLA(nil)
	c.Insert(1, 1) // one entry, in level 0
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] = 17 // kind byte of the only cell
	r := NewCOLA(nil)
	if _, err := r.ReadFrom(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad entry kind: got %v, want ErrCorrupt", err)
	}
	if r.Len() != 0 {
		t.Fatal("failed ReadFrom mutated receiver")
	}
}

// TestSnapshotTransferEquality is the physical-codec promise: a
// restored structure charges the same transfers for the same subsequent
// operations as the original under identical DAM geometry.
func TestSnapshotTransferEquality(t *testing.T) {
	build := func(sp *dam.Space) *GCOLA { return NewCOLA(sp) }
	storeA := newBenchStore()
	a := build(storeA.Space("cola"))
	seq := workload.NewRandomUnique(91)
	keys := workload.Take(seq, 1<<13)
	for _, k := range keys {
		a.Insert(k, k)
	}

	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	storeB := newBenchStore()
	b := build(storeB.Space("cola"))
	if _, err := b.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	storeA.DropCache()
	storeA.ResetCounters()
	storeB.DropCache()
	storeB.ResetCounters()
	probe := workload.NewRNG(17)
	for i := 0; i < 2048; i++ {
		k := keys[probe.Intn(len(keys))]
		a.Search(k)
		b.Search(k)
	}
	for i := uint64(0); i < 512; i++ {
		k := (1 << 62) + i
		a.Insert(k, k)
		b.Insert(k, k)
	}
	if storeA.Transfers() != storeB.Transfers() {
		t.Fatalf("transfer counts diverge: original %d, restored %d", storeA.Transfers(), storeB.Transfers())
	}
}

func TestBulkLoadTransferCost(t *testing.T) {
	// Bulk loading must be about one sequential write: far cheaper than
	// inserting one by one.
	mk := func() ([]core.Element, *GCOLA, func() uint64) {
		store := newBenchStore()
		c := NewCOLA(store.Space("cola"))
		seq := workload.NewRandomUnique(81)
		elems := make([]core.Element, 1<<14)
		for i := range elems {
			k := seq.Next()
			elems[i] = core.Element{Key: k, Value: k}
		}
		return elems, c, store.Transfers
	}
	elems, bulk, bulkTr := mk()
	bulk.BulkLoad(elems)
	elems2, incr, incrTr := mk()
	for _, e := range elems2 {
		incr.Insert(e.Key, e.Value)
	}
	if bulkTr()*2 >= incrTr() {
		t.Fatalf("bulk load transfers (%d) not clearly below incremental (%d)", bulkTr(), incrTr())
	}
}

// newBenchStore builds the small store used by cost comparisons here.
func newBenchStore() *dam.Store { return dam.NewStore(4096, 1<<17) }
