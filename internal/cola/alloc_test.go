package cola

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// prefillGCOLA inserts n distinct random keys and returns the keys.
// DAM accounting is off (nil space): these tests protect the
// structure's own allocation behaviour, not the simulator's.
func prefillGCOLA(t *testing.T, c *GCOLA, n int) []uint64 {
	t.Helper()
	seq := workload.NewRandomUnique(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = seq.Next()
		c.Insert(keys[i], keys[i])
	}
	return keys
}

// TestSearchAllocsSteadyState asserts the zero-allocation contract of
// the search hot path, with lookahead pointers present (the paper's
// default density, so the fractional-cascading window path is what
// runs, not the basic-COLA fallback).
func TestSearchAllocsSteadyState(t *testing.T) {
	c := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	keys := prefillGCOLA(t, c, 1<<13)

	la := 0
	for l := range c.levels {
		la += c.levels[l].la
	}
	if la == 0 {
		t.Fatal("precondition: no lookahead pointers present; the test would exercise the wrong path")
	}

	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		c.Search(keys[i%len(keys)])
		i++
	})
	if avg != 0 {
		t.Fatalf("GCOLA.Search allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestInsertAllocsSteadyState asserts that inserts between level-growth
// boundaries are allocation-free: the merge ladder, run gathering,
// lookahead stripping, and pointer distribution must all run out of the
// per-tree scratch. The prefill is sized to 2^14+1 elements so the next
// level allocation sits at ~2^15 inserts, far beyond the measured
// window.
func TestInsertAllocsSteadyState(t *testing.T) {
	c := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	prefillGCOLA(t, c, 1<<14+1)

	seq := workload.NewRandomUnique(11)
	avg := testing.AllocsPerRun(1<<12, func() {
		k := seq.Next()
		c.Insert(k, k)
	})
	if avg != 0 {
		t.Fatalf("GCOLA.Insert allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestRangeAllocsSteadyState asserts that Range's cursor setup and
// k-way merge reuse the pooled per-call cursor buffers.
func TestRangeAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	c := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	keys := prefillGCOLA(t, c, 1<<12)

	var sum uint64
	fn := func(e core.Element) bool { sum += e.Value; return true }
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		lo := keys[i%len(keys)]
		c.Range(lo, lo+1<<20, fn)
		i++
	})
	if avg != 0 {
		t.Fatalf("GCOLA.Range allocates %.2f allocs/op in steady state, want 0", avg)
	}
	_ = sum
}

// prefillDict drives n distinct random keys into any dictionary and
// returns the keys, mirroring prefillGCOLA for the deamortized kinds.
func prefillDict(t *testing.T, d core.Dictionary, n int) []uint64 {
	t.Helper()
	seq := workload.NewRandomUnique(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = seq.Next()
		d.Insert(keys[i], keys[i])
	}
	return keys
}

// TestDeamortizedSearchAllocs pins the deamortized COLA's search path at
// zero allocations: its level walk touches only the two fixed arrays per
// level.
func TestDeamortizedSearchAllocs(t *testing.T) {
	d := NewDeamortized(nil)
	keys := prefillDict(t, d, 1<<13)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		d.Search(keys[i%len(keys)])
		i++
	})
	if avg != 0 {
		t.Fatalf("Deamortized.Search allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDeamortizedLASearchAllocs pins the deamortized-lookahead search
// path at zero allocations: the per-level visible-slot ordering lives in
// a stack buffer (visibleNewestFirst), not a fresh slice per level.
func TestDeamortizedLASearchAllocs(t *testing.T) {
	d := NewDeamortizedLookahead(nil)
	keys := prefillDict(t, d, 1<<13)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		d.Search(keys[i%len(keys)])
		i++
	})
	if avg != 0 {
		t.Fatalf("DeamortizedLookahead.Search allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDeamortizedRangeAllocs pins both deamortized kinds' Range at zero
// allocations in steady state: cursors come from their sync.Pools.
func TestDeamortizedRangeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	for _, tc := range []struct {
		name string
		d    core.Dictionary
	}{
		{"deamortized", NewDeamortized(nil)},
		{"deamortized-la", NewDeamortizedLookahead(nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys := prefillDict(t, tc.d, 1<<12)
			var sum uint64
			fn := func(e core.Element) bool { sum += e.Value; return true }
			i := 0
			avg := testing.AllocsPerRun(500, func() {
				lo := keys[i%len(keys)]
				tc.d.Range(lo, lo+1<<20, fn)
				i++
			})
			if avg != 0 {
				t.Fatalf("%s Range allocates %.2f allocs/op in steady state, want 0", tc.name, avg)
			}
			_ = sum
		})
	}
}

// TestMergeScratchDoesNotAliasLevels guards the scratch ownership rule:
// after any operation, no level's backing array may alias the merge
// scratch buffers (installLevel must copy).
func TestMergeScratchDoesNotAliasLevels(t *testing.T) {
	c := New(Options{Growth: 2, PointerDensity: DefaultPointerDensity})
	seq := workload.NewRandomUnique(13)
	for i := 0; i < 1<<10; i++ {
		k := seq.Next()
		c.Insert(k, k)
		if i%97 == 0 {
			c.checkInvariants()
		}
	}
	aliases := func(a, b []entry) bool {
		return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
	}
	for l := range c.levels {
		data := c.levels[l].data
		if aliases(data, c.scratch.ping) || aliases(data, c.scratch.pong) || aliases(data, c.scratch.la) {
			t.Fatalf("level %d backing array aliases merge scratch", l)
		}
	}
	c.checkInvariants()
}
