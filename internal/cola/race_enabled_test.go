//go:build race

package cola

// raceEnabled reports whether this test binary was built with the race
// detector, which makes sync.Pool drop items at random (to provoke
// races) and so breaks the pooled-scratch zero-allocation assertions.
const raceEnabled = true
