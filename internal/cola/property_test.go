package cola

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

// refDict is a trivially correct dictionary used as the oracle in
// differential tests.
type refDict struct {
	m map[uint64]uint64
}

func newRef() *refDict { return &refDict{m: make(map[uint64]uint64)} }

func (r *refDict) Insert(k, v uint64)             { r.m[k] = v }
func (r *refDict) Delete(k uint64) bool           { _, ok := r.m[k]; delete(r.m, k); return ok }
func (r *refDict) Search(k uint64) (uint64, bool) { v, ok := r.m[k]; return v, ok }
func (r *refDict) Len() int                       { return len(r.m) }

func (r *refDict) sortedRange(lo, hi uint64) []core.Element {
	var out []core.Element
	for k, v := range r.m {
		if k >= lo && k <= hi {
			out = append(out, core.Element{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// applyOps drives both the GCOLA and the oracle through a randomized op
// stream and cross-checks after every operation.
func applyOps(t *testing.T, c *GCOLA, ops []uint8, seed uint64) {
	t.Helper()
	ref := newRef()
	rng := workload.NewRNG(seed)
	keyspace := uint64(256) // small keyspace to force collisions, updates, deletes
	for i, op := range ops {
		k := rng.Uint64() % keyspace
		switch op % 4 {
		case 0, 1: // insert biased 2x
			v := rng.Uint64()
			c.Insert(k, v)
			ref.Insert(k, v)
		case 2:
			got := c.Delete(k)
			want := ref.Delete(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
		case 3:
			gv, gok := c.Search(k)
			wv, wok := ref.Search(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Search(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
		c.checkInvariants()
	}
	// Full verification pass.
	for k := uint64(0); k < keyspace; k++ {
		gv, gok := c.Search(k)
		wv, wok := ref.Search(k)
		if gok != wok || (gok && gv != wv) {
			t.Fatalf("final: Search(%d) = (%d,%v), want (%d,%v)", k, gv, gok, wv, wok)
		}
	}
	// Range must agree with the oracle.
	want := ref.sortedRange(0, keyspace)
	var got []core.Element
	c.Range(0, keyspace, func(e core.Element) bool { got = append(got, e); return true })
	if len(got) != len(want) {
		t.Fatalf("Range sizes: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Compact reconciles Len exactly.
	c.Compact()
	c.checkInvariants()
	if c.Len() != ref.Len() {
		t.Fatalf("Len after Compact = %d, want %d", c.Len(), ref.Len())
	}
}

func TestDifferentialCOLA(t *testing.T) {
	ops := make([]uint8, 2000)
	rng := workload.NewRNG(1)
	for i := range ops {
		ops[i] = uint8(rng.Uint64())
	}
	applyOps(t, NewCOLA(nil), ops, 42)
}

func TestDifferentialBasic(t *testing.T) {
	ops := make([]uint8, 2000)
	rng := workload.NewRNG(2)
	for i := range ops {
		ops[i] = uint8(rng.Uint64())
	}
	applyOps(t, NewBasic(nil), ops, 43)
}

func TestDifferentialGrowth4(t *testing.T) {
	ops := make([]uint8, 2000)
	rng := workload.NewRNG(3)
	for i := range ops {
		ops[i] = uint8(rng.Uint64())
	}
	applyOps(t, New(Options{Growth: 4, PointerDensity: 0.1}), ops, 44)
}

func TestDifferentialGrowth8HighDensity(t *testing.T) {
	ops := make([]uint8, 1500)
	rng := workload.NewRNG(4)
	for i := range ops {
		ops[i] = uint8(rng.Uint64())
	}
	applyOps(t, New(Options{Growth: 8, PointerDensity: 0.5}), ops, 45)
}

// QuickCheck: any random op stream preserves oracle equivalence.
func TestQuickDifferential(t *testing.T) {
	f := func(ops []uint8, seed uint64) bool {
		if len(ops) > 600 {
			ops = ops[:600]
		}
		c := New(Options{Growth: 2 + int(seed%3), PointerDensity: float64(seed%6) / 10})
		sub := &testing.T{}
		applyOps(sub, c, ops, seed)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck: inserting any set of distinct keys makes them all findable
// and keeps Len exact, for every growth factor.
func TestQuickDistinctKeysAllFindable(t *testing.T) {
	f := func(raw []uint64, gSeed uint8) bool {
		g := 2 + int(gSeed%7)
		c := New(Options{Growth: g, PointerDensity: 0.1})
		seen := make(map[uint64]bool)
		for _, k := range raw {
			if seen[k] {
				continue
			}
			seen[k] = true
			c.Insert(k, k^0xDEAD)
		}
		c.checkInvariants()
		if c.Len() != len(seen) {
			return false
		}
		for k := range seen {
			if v, ok := c.Search(k); !ok || v != k^0xDEAD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck: a range query over any window equals the sorted distinct
// keys in the window.
func TestQuickRangeWindow(t *testing.T) {
	f := func(raw []uint16, lo16, hi16 uint16) bool {
		lo, hi := uint64(lo16), uint64(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		c := NewCOLA(nil)
		seen := make(map[uint64]bool)
		for _, k16 := range raw {
			k := uint64(k16)
			seen[k] = true
			c.Insert(k, k)
		}
		var want []uint64
		for k := range seen {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		c.Range(lo, hi, func(e core.Element) bool { got = append(got, e.Key); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck: the lookahead-pointer structure never misdirects a search —
// with pointers enabled, every search over a random load agrees with the
// pointerless basic COLA.
func TestQuickPointersVsBasic(t *testing.T) {
	f := func(raw []uint16, probes []uint16) bool {
		withP := NewCOLA(nil)
		noP := NewBasic(nil)
		for _, k16 := range raw {
			k := uint64(k16)
			withP.Insert(k, k*3)
			noP.Insert(k, k*3)
		}
		for _, p16 := range probes {
			p := uint64(p16)
			v1, ok1 := withP.Search(p)
			v2, ok2 := noP.Search(p)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
