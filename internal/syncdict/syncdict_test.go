package syncdict

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

// exclusiveInner hides SharedReader methods so tests can force the
// exclusive-lock path on an otherwise shared-read-safe structure.
type exclusiveInner struct {
	core.Dictionary
}

func TestSharedReadsProbe(t *testing.T) {
	shared := New(cola.NewCOLA(nil))
	if !shared.SharedReads() {
		t.Fatal("COLA inner: SharedReads = false, want true")
	}
	if !core.SharedReads(shared) {
		t.Fatal("core.SharedReads disagrees with the wrapper's prober")
	}

	excl := New(exclusiveInner{cola.NewCOLA(nil)})
	if excl.SharedReads() {
		t.Fatal("hidden-SharedReader inner: SharedReads = true, want false")
	}
	if core.SharedReads(excl) {
		t.Fatal("core.SharedReads must consult the wrapper's prober, not its method set")
	}

	deam := New(cola.NewDeamortized(nil))
	if deam.SharedReads() {
		t.Fatal("deamortized inner: SharedReads = true, want false (stays exclusive)")
	}

	if !shared.Caps().SharedReads {
		t.Fatal("Caps: SharedReads = false for COLA inner")
	}
	if deam.Caps().SharedReads {
		t.Fatal("Caps: SharedReads = true for deamortized inner")
	}
}

// TestSharedSearchesRaceInserts is the core -race stress of the RLock
// fast path: readers hammer Search/Range on the shared side while a
// writer streams inserts and deletes through the exclusive side, over a
// DAM-charged inner so the shared-read epoch (frozen accounting) is
// exercised too, and the aggregation paths (Len/Stats/Transfers) poll
// from their read-lock side throughout.
func TestSharedSearchesRaceInserts(t *testing.T) {
	store := dam.NewStore(dam.DefaultBlockBytes, 1<<16)
	s := New(cola.NewCOLA(store.Space("t")))

	const keyspace = 1 << 12
	for k := uint64(0); k < keyspace; k += 2 {
		s.Insert(k, k)
	}

	readers := 6
	perG := 4000
	if testing.Short() {
		perG = 800
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % keyspace
				if v, ok := s.Search(k); ok && v != k && v != k+1 {
					t.Errorf("Search(%d) = %d, want %d or %d", k, v, k, k+1)
					return
				}
				if i%64 == 0 {
					s.Range(k, k+128, func(e core.Element) bool { return true })
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		rng := workload.NewRNG(77)
		for i := 0; i < perG && !stop.Load(); i++ {
			k := rng.Uint64() % keyspace
			switch rng.Uint64() % 4 {
			case 3:
				s.Delete(k)
			default:
				s.Insert(k, k+1)
			}
		}
	}()
	wg.Add(1)
	go func() { // aggregation poller
		defer wg.Done()
		for i := 0; i < perG/4 && !stop.Load(); i++ {
			_ = s.Len()
			_ = s.Stats()
			_ = s.Transfers()
		}
	}()
	wg.Wait()
	stop.Store(true)

	// Coherence after the storm, and the search counter reached Stats.
	s.Insert(keyspace+1, 7)
	if v, ok := s.Search(keyspace + 1); !ok || v != 7 {
		t.Fatalf("post-stress Search = (%d, %v)", v, ok)
	}
	if st := s.Stats(); st.Searches == 0 {
		t.Fatal("Stats.Searches = 0 after concurrent searches")
	}
	if s.Transfers() != 0 {
		t.Log("note: syncdict.Transfers is zero for space-charged inners (store owned externally)")
	}
	if store.Transfers() == 0 {
		t.Fatal("DAM store recorded no transfers")
	}
}

// TestExclusiveInnerStaysCorrect runs the same mixed stress with the
// SharedReader hidden, covering the exclusive fallback path under -race.
func TestExclusiveInnerStaysCorrect(t *testing.T) {
	s := New(exclusiveInner{cola.NewCOLA(nil)})
	const keyspace = 1 << 10
	perG := 2000
	if testing.Short() {
		perG = 400
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 11)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % keyspace
				switch rng.Uint64() % 4 {
				case 0:
					s.Insert(k, k)
				case 1:
					_ = s.Len()
				default:
					s.Search(k)
				}
			}
		}(w)
	}
	wg.Wait()
	s.Insert(1, 1)
	if _, ok := s.Search(1); !ok {
		t.Fatal("post-stress Search lost an insert")
	}
}

// TestCapabilityDegradation pins the graceful degradation the package
// comment promises when the inner structure lacks a capability.
func TestCapabilityDegradation(t *testing.T) {
	s := New(exclusiveInner{cola.NewCOLA(nil)}) // interface set reduced to Dictionary
	if s.Delete(1) {
		t.Fatal("Delete on a non-Deleter inner returned true")
	}
	if st := s.Stats(); st != (core.Stats{}) {
		t.Fatalf("Stats on a non-Statser inner = %+v, want zero", st)
	}
	if s.Transfers() != 0 {
		t.Fatal("Transfers on a non-TransferCounter inner is nonzero")
	}
	s.InsertBatch([]core.Element{{Key: 1, Value: 10}, {Key: 2, Value: 20}})
	if s.Len() != 2 {
		t.Fatalf("fallback InsertBatch: Len = %d, want 2", s.Len())
	}
	if c := s.Caps(); c.Delete || c.Stats || c.Snapshot || c.SharedReads {
		t.Fatalf("Caps = %v, want nothing forwarded (batch alone is the wrapper's native one-lock path)", c)
	}
	if !s.Caps().Batch {
		t.Fatal("Caps: the wrapper's one-lock batch path is native and must always report Batch")
	}
}

// TestNestedBracketsForward checks the wrapper's own SharedReader
// implementation (used when an outer wrapper nests this one): brackets
// reach the inner DAM store, and are no-ops for exclusive inners.
func TestNestedBracketsForward(t *testing.T) {
	store := dam.NewStore(dam.DefaultBlockBytes, 1<<14)
	inner := cola.NewCOLA(store.Space("t"))
	s := New(inner)
	for i := uint64(0); i < 1024; i++ {
		s.Insert(i, i)
	}
	base := store.Transfers()
	s.BeginSharedReads()
	// Inside the forwarded bracket the store must be in frozen mode:
	// a direct charge counts but changes no residency.
	inner.BeginSharedReads()
	inner.EndSharedReads()
	s.Search(5)
	s.EndSharedReads()
	if store.Transfers() < base {
		t.Fatal("transfers went backwards")
	}
	// Exclusive wrapper: brackets are no-ops and must not panic.
	e := New(exclusiveInner{cola.NewCOLA(nil)})
	e.BeginSharedReads()
	e.EndSharedReads()
}
