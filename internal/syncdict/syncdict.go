// Package syncdict provides the coarse-grained concurrency wrapper of
// the public facade: one sync.RWMutex around a single-threaded
// dictionary. It lives in an internal package (rather than in the
// facade) so the kind registry can construct it like any other
// structure; the facade re-exports it as repro.SynchronizedDictionary.
package syncdict

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// Dict wraps a core.Dictionary with a sync.RWMutex so it can be shared
// between goroutines. The underlying structures are single-threaded by
// design (the paper's experiments are too); this wrapper is the
// coarse-grained escape hatch for concurrent callers.
//
// Note that Insert on the buffered structures can trigger a merge, so a
// "read-mostly" workload still serializes behind occasional long write
// sections; the deamortized COLA's O(log N) worst-case insert keeps
// those sections short. For real multi-core scaling use the sharded map
// (internal/shard), which hash-partitions keys over N independently
// locked structures.
//
// The wrapper forwards the capabilities of the structure it wraps:
// Delete reaches a wrapped core.Deleter, Stats a wrapped core.Statser,
// Transfers a wrapped core.TransferCounter, and InsertBatch a wrapped
// core.BatchInserter — each under the lock, so a capability call is as
// safe as the core operations. Where the inner structure lacks the
// capability the method degrades gracefully (false, zero Stats, zero
// transfers, an Insert loop); Supports reports what is genuinely
// forwarded.
type Dict struct {
	mu sync.RWMutex
	d  core.Dictionary
}

// New wraps d for concurrent use.
func New(d core.Dictionary) *Dict {
	return &Dict{d: d}
}

var (
	_ core.Dictionary      = (*Dict)(nil)
	_ core.Deleter         = (*Dict)(nil)
	_ core.Statser         = (*Dict)(nil)
	_ core.TransferCounter = (*Dict)(nil)
	_ core.BatchInserter   = (*Dict)(nil)
	_ core.Snapshotter     = (*Dict)(nil)
)

// Insert implements core.Dictionary.
func (s *Dict) Insert(key, value uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Insert(key, value)
}

// InsertBatch implements core.BatchInserter: the whole batch applies
// under one lock acquisition, forwarding to the inner structure's own
// batch path when it has one.
func (s *Dict) InsertBatch(elems []core.Element) {
	s.mu.Lock()
	defer s.mu.Unlock()
	core.InsertBatch(s.d, elems)
}

// Search implements core.Dictionary.
//
// The lock is exclusive, not shared: a search on a DAM-charged structure
// mutates the store's LRU state, and several structures keep internal
// counters. Correctness first; callers needing parallel reads should
// shard.
func (s *Dict) Search(key uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Search(key)
}

// Range implements core.Dictionary. The callback runs under the lock; it
// must not call back into the dictionary.
func (s *Dict) Range(lo, hi uint64, fn func(core.Element) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Range(lo, hi, fn)
}

// Len implements core.Dictionary.
func (s *Dict) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Len()
}

// Delete forwards to the wrapped structure's Deleter if it has one; it
// reports false otherwise.
func (s *Dict) Delete(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if del, ok := s.d.(core.Deleter); ok {
		return del.Delete(key)
	}
	return false
}

// Stats forwards to the wrapped structure's Statser under the lock; it
// returns the zero Stats when the inner structure keeps no counters.
func (s *Dict) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.d.(core.Statser); ok {
		return st.Stats()
	}
	return core.Stats{}
}

// Transfers forwards to the wrapped structure's TransferCounter under
// the lock; it reports zero when the inner structure does not own its
// stores.
func (s *Dict) Transfers() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tc, ok := s.d.(core.TransferCounter); ok {
		return tc.Transfers()
	}
	return 0
}

// WriteTo forwards to the wrapped structure's Snapshotter under the
// lock; the payload is the inner structure's own (the wrapper adds no
// framing, so a snapshot of a synchronized dictionary and of its inner
// structure are interchangeable). It errors when the inner structure
// cannot snapshot itself.
func (s *Dict) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.d.(core.Snapshotter); ok {
		return sn.WriteTo(w)
	}
	return 0, fmt.Errorf("syncdict: wrapped %T is not a Snapshotter", s.d)
}

// ReadFrom forwards to the wrapped structure's Snapshotter under the
// lock; the wrapped structure must be empty.
func (s *Dict) ReadFrom(r io.Reader) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.d.(core.Snapshotter); ok {
		return sn.ReadFrom(r)
	}
	return 0, fmt.Errorf("syncdict: wrapped %T is not a Snapshotter", s.d)
}

// Supports reports which capabilities the wrapper genuinely forwards to
// the inner structure (deleter, statser, transfers, batch): the wrapper
// implements every interface unconditionally, so type assertions on it
// always succeed and this is the honest capability probe.
func (s *Dict) Supports() (deleter, statser, transfers, batch bool) {
	_, deleter = s.d.(core.Deleter)
	_, statser = s.d.(core.Statser)
	_, transfers = s.d.(core.TransferCounter)
	_, batch = s.d.(core.BatchInserter)
	return deleter, statser, transfers, batch
}

// Unwrap returns the underlying dictionary (for single-threaded phases).
func (s *Dict) Unwrap() core.Dictionary { return s.d }
