// Package syncdict provides the coarse-grained concurrency wrapper of
// the public facade: one sync.RWMutex around a single-threaded
// dictionary. It lives in an internal package (rather than in the
// facade) so the kind registry can construct it like any other
// structure; the facade re-exports it as repro.SynchronizedDictionary.
//
// # Lock discipline
//
// The wrapper maintains one invariant: the exclusive side of the
// RWMutex is held for every call that may mutate the inner structure
// non-atomically, and the read side serves everything that provably
// cannot. Concretely:
//
//   - Mutations (Insert, InsertBatch, Delete, WriteTo*, ReadFrom) always
//     take the exclusive lock. (*WriteTo mutates nothing logically, but
//     it streams DAM-charged reads and level state and is not part of
//     the shared-read contract, so it stays exclusive.)
//   - Aggregation (Len, Stats, Transfers) takes the read lock: every
//     inner accessor behind it is mutation-free — Len and Stats read
//     counters (structures implementing core.SharedReader keep their
//     search counter atomic precisely so Stats can race searches), and
//     Transfers only exists on inner structures that own their stores
//     and lock internally (the sharded map, the durable wrapper).
//   - Search and Range take the read lock when the inner structure
//     genuinely supports shared reads (core.AsSharedReader at
//     construction time), bracketed by Begin/EndSharedReads so a
//     DAM-charged inner freezes its accounting; they fall back to the
//     exclusive lock otherwise.
package syncdict

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// Dict wraps a core.Dictionary with a sync.RWMutex so it can be shared
// between goroutines. The underlying structures are single-threaded by
// design (the paper's experiments are too); this wrapper is the
// coarse-grained escape hatch for concurrent callers.
//
// When the inner structure declares shared-read safety
// (core.SharedReader, honestly probed via core.AsSharedReader), Search
// and Range run under the read lock and scale with concurrent readers;
// a read-mostly workload then serializes only behind the occasional
// write section. For structures that stay exclusive (the deamortized
// COLAs, an accounted shuttle tree) every operation serializes as
// before. For multi-core write scaling
// use the sharded map (internal/shard), which hash-partitions keys over
// N independently locked structures.
//
// The wrapper forwards the capabilities of the structure it wraps:
// Delete reaches a wrapped core.Deleter, Stats a wrapped core.Statser,
// Transfers a wrapped core.TransferCounter, and InsertBatch a wrapped
// core.BatchInserter — each under the appropriate lock side, so a
// capability call is as safe as the core operations. Where the inner
// structure lacks the capability the method degrades gracefully (false,
// zero Stats, zero transfers, an Insert loop); Caps reports what is
// genuinely forwarded.
type Dict struct {
	mu sync.RWMutex
	d  core.Dictionary
	// sr is the shared-read bracket target; nil means the inner
	// structure did not (honestly) declare shared-read safety and reads
	// stay exclusive.
	sr core.SharedReader
}

// New wraps d for concurrent use, probing its shared-read capability
// once here (the answer is a property of the built instance and cannot
// change afterwards).
func New(d core.Dictionary) *Dict {
	s := &Dict{d: d}
	if sr, ok := core.AsSharedReader(d); ok {
		s.sr = sr
	}
	return s
}

var (
	_ core.Dictionary       = (*Dict)(nil)
	_ core.Deleter          = (*Dict)(nil)
	_ core.Statser          = (*Dict)(nil)
	_ core.TransferCounter  = (*Dict)(nil)
	_ core.BatchInserter    = (*Dict)(nil)
	_ core.Snapshotter      = (*Dict)(nil)
	_ core.SharedReader     = (*Dict)(nil)
	_ core.SharedReadProber = (*Dict)(nil)
	_ core.CapsProber       = (*Dict)(nil)
)

// Insert implements core.Dictionary.
func (s *Dict) Insert(key, value uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Insert(key, value)
}

// InsertBatch implements core.BatchInserter: the whole batch applies
// under one lock acquisition, forwarding to the inner structure's own
// batch path when it has one.
func (s *Dict) InsertBatch(elems []core.Element) {
	s.mu.Lock()
	defer s.mu.Unlock()
	core.InsertBatch(s.d, elems)
}

// Search implements core.Dictionary. With a shared-read-safe inner the
// lock is the RWMutex's read side and concurrent searches proceed in
// parallel, bracketed so DAM accounting freezes (see the package
// comment); otherwise the lock is exclusive, the pre-shared-read
// behaviour.
func (s *Dict) Search(key uint64) (uint64, bool) {
	if s.sr != nil {
		s.mu.RLock()
		s.sr.BeginSharedReads()
		v, ok := s.d.Search(key)
		s.sr.EndSharedReads()
		s.mu.RUnlock()
		return v, ok
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Search(key)
}

// Range implements core.Dictionary, with the same lock choice as
// Search. The callback runs under the lock and must not call back into
// the dictionary at all — not even Search: a writer waiting between
// this goroutine's read lock and a reentrant RLock deadlocks both
// (sync.RWMutex forbids recursive read-locking for exactly that
// reason). The bracket and lock release are deferred so a panicking
// callback cannot leak the read lock or leave the store's shared-read
// epoch open.
func (s *Dict) Range(lo, hi uint64, fn func(core.Element) bool) {
	if s.sr != nil {
		s.mu.RLock()
		s.sr.BeginSharedReads()
		defer func() {
			s.sr.EndSharedReads()
			s.mu.RUnlock()
		}()
		s.d.Range(lo, hi, fn)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Range(lo, hi, fn)
}

// Len implements core.Dictionary on the read side of the lock; inner
// Len accessors are mutation-free (see the package comment).
//
//repro:readonly
func (s *Dict) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Len()
}

// Delete forwards to the wrapped structure's Deleter if it has one; it
// reports false otherwise.
func (s *Dict) Delete(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if del, ok := s.d.(core.Deleter); ok {
		return del.Delete(key)
	}
	return false
}

// Stats forwards to the wrapped structure's Statser on the read side of
// the lock (Stats accessors are mutation-free, and shared-read-safe
// structures load their search counter atomically, so Stats may race
// bracketed searches); it returns the zero Stats when the inner
// structure keeps no counters.
//
//repro:readonly
func (s *Dict) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st, ok := s.d.(core.Statser); ok {
		return st.Stats()
	}
	return core.Stats{}
}

// Transfers forwards to the wrapped structure's TransferCounter on the
// read side of the lock (only structures that own — and internally
// synchronize — their stores implement it); it reports zero when the
// inner structure does not own its stores.
//
//repro:readonly
func (s *Dict) Transfers() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tc, ok := s.d.(core.TransferCounter); ok {
		return tc.Transfers()
	}
	return 0
}

// WriteTo forwards to the wrapped structure's Snapshotter under the
// lock; the payload is the inner structure's own (the wrapper adds no
// framing, so a snapshot of a synchronized dictionary and of its inner
// structure are interchangeable). It errors when the inner structure
// cannot snapshot itself.
func (s *Dict) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.d.(core.Snapshotter); ok {
		return sn.WriteTo(w)
	}
	return 0, fmt.Errorf("syncdict: wrapped %T is not a Snapshotter", s.d)
}

// ReadFrom forwards to the wrapped structure's Snapshotter under the
// lock; the wrapped structure must be empty.
func (s *Dict) ReadFrom(r io.Reader) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.d.(core.Snapshotter); ok {
		return sn.ReadFrom(r)
	}
	return 0, fmt.Errorf("syncdict: wrapped %T is not a Snapshotter", s.d)
}

// SharedReads implements core.SharedReadProber: the wrapper's own
// methods exist unconditionally, so this — whether the inner structure
// genuinely declared shared-read safety — is the honest probe, and it
// is what an outer wrapper nesting this one consults.
func (s *Dict) SharedReads() bool { return s.sr != nil }

// BeginSharedReads implements core.SharedReader for outer wrappers
// nesting this one (brackets nest by design); a no-op when the inner
// structure is not shared-read safe.
func (s *Dict) BeginSharedReads() {
	if s.sr != nil {
		s.sr.BeginSharedReads()
	}
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (s *Dict) EndSharedReads() {
	if s.sr != nil {
		s.sr.EndSharedReads()
	}
}

// Caps implements core.CapsProber: the wrapper implements every
// interface unconditionally, so type assertions on it always succeed
// and this is the honest capability probe, reporting what is genuinely
// forwarded to the inner structure. The sharded map and the durable
// wrapper expose the same probe, so the wrappers report symmetrically.
// Batch is native regardless of the inner: the whole batch applies
// under one lock acquisition, the wrapper's own fast path.
func (s *Dict) Caps() core.Caps {
	c := core.CapsOf(s.d)
	c.Batch = true
	c.SharedReads = s.sr != nil
	return c
}

// Unwrap returns the underlying dictionary (for single-threaded phases).
func (s *Dict) Unwrap() core.Dictionary { return s.d }
