package la

import (
	"testing"

	"repro/internal/dam"
	"repro/internal/workload"
)

func TestGrowthDerivation(t *testing.T) {
	cases := []struct {
		b    int
		eps  float64
		want int
	}{
		{128, 0, 2},    // eps=0: COLA point (clamped to 2)
		{128, 1, 128},  // eps=1: B-tree point
		{128, 0.5, 11}, // sqrt(128) ~ 11.3
		{256, 0.5, 16},
		{4, 1, 4},
	}
	for _, c := range cases {
		a := New(Options{BlockElems: c.b, Epsilon: c.eps})
		if got := a.GrowthFactor(); got != c.want {
			t.Errorf("B=%d eps=%v: growth = %d, want %d", c.b, c.eps, got, c.want)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"tiny B":  func() { New(Options{BlockElems: 1, Epsilon: 0.5}) },
		"eps < 0": func() { New(Options{BlockElems: 16, Epsilon: -0.1}) },
		"eps > 1": func() { New(Options{BlockElems: 16, Epsilon: 1.1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDictionaryBehaviour(t *testing.T) {
	for _, eps := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a := New(Options{BlockElems: 64, Epsilon: eps})
		const n = 1 << 12
		seq := workload.NewRandomUnique(uint64(eps*100) + 1)
		keys := workload.Take(seq, n)
		for _, k := range keys {
			a.Insert(k, k+1)
		}
		for _, k := range keys {
			if v, ok := a.Search(k); !ok || v != k+1 {
				t.Fatalf("eps=%v: Search(%d) = (%d,%v)", eps, k, v, ok)
			}
		}
		if a.Len() != n {
			t.Fatalf("eps=%v: Len = %d, want %d", eps, a.Len(), n)
		}
	}
}

// TestTradeoffMonotone verifies the Be-tree tradeoff shape on the DAM
// simulator: as epsilon rises, insert transfers rise and search
// transfers fall (weakly), matching Section 3's cache-aware analysis.
func TestTradeoffMonotone(t *testing.T) {
	// The monotone shape only emerges once the array leaves the
	// simulated cache, so the workload cannot be shrunk for short mode.
	if testing.Short() {
		t.Skip("skipping out-of-core tradeoff sweep in short mode")
	}
	const (
		blockBytes = 4096
		elemBytes  = 32
		blockElems = blockBytes / elemBytes
		n          = 1 << 15
		searches   = 1 << 10
	)
	type point struct {
		eps                float64
		insertTr, searchTr float64
	}
	var pts []point
	for _, eps := range []float64{0, 0.5, 1} {
		store := dam.NewStore(blockBytes, 1<<17)
		a := New(Options{BlockElems: blockElems, Epsilon: eps, Space: store.Space("la")})
		seq := workload.NewRandomUnique(77)
		for i := 0; i < n; i++ {
			k := seq.Next()
			a.Insert(k, k)
		}
		insertTr := float64(store.Transfers()) / n
		store.DropCache()
		store.ResetCounters()
		probe := workload.NewRandomUnique(77)
		for i := 0; i < searches; i++ {
			a.Search(probe.Next())
		}
		searchTr := float64(store.Transfers()) / searches
		pts = append(pts, point{eps, insertTr, searchTr})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].insertTr < pts[i-1].insertTr*0.9 {
			t.Errorf("insert transfers fell from %v (eps=%v) to %v (eps=%v); expected non-decreasing",
				pts[i-1].insertTr, pts[i-1].eps, pts[i].insertTr, pts[i].eps)
		}
		if pts[i].searchTr > pts[i-1].searchTr*1.1 {
			t.Errorf("search transfers rose from %v (eps=%v) to %v (eps=%v); expected non-increasing",
				pts[i-1].searchTr, pts[i-1].eps, pts[i].searchTr, pts[i].eps)
		}
	}
	t.Logf("tradeoff points: %+v", pts)
}
