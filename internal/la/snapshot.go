package la

import (
	"io"

	"repro/internal/core"
)

// snapshotMagic identifies the cache-aware lookahead array's logical
// snapshot payload (see internal/core/snapshot.go): live elements in
// ascending key order, re-inserted on restore. Level occupancy and the
// B^epsilon growth ladder are rebuilt by the inserts.
const snapshotMagic = "LARR"

var _ core.Snapshotter = (*Array)(nil)

// WriteTo implements io.WriterTo (logical codec).
func (a *Array) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, snapshotMagic, a)
}

// ReadFrom implements io.ReaderFrom; a must be empty.
func (a *Array) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, snapshotMagic, a)
}
