// Package la implements the cache-aware lookahead array of Section 3's
// "Cache-aware update/query tradeoff": a lookahead array whose growth
// factor is g = Theta(B^epsilon), which achieves O(log_{B^eps+1} N) block
// transfers per query and O((log_{B^eps+1} N)/B^(1-eps)) per insert,
// matching the Be-tree of Brodal and Fagerberg across the whole
// insert/search tradeoff:
//
//   - eps = 0 recovers the COLA / BRT point (fast inserts, log N search);
//   - eps = 1 recovers the B-tree point (log_B N search, slower inserts);
//   - eps = 1/2 halves search cost relative to a BRT while keeping
//     inserts a factor ~sqrt(B)/2 faster than a B-tree.
//
// Unlike the structures in package cola, this one is cache-AWARE: its
// constructor takes B explicitly and uses it as a tuning parameter, which
// is precisely what the cache-oblivious model forbids. It reuses the
// GCOLA machinery with the derived growth factor; the lookahead pointer
// density is raised so that each level window spans O(B^eps) cells,
// mirroring "every Theta(B^eps)th element will appear as a lookahead
// pointer in the previous level".
package la

import (
	"math"

	"repro/internal/cola"
	"repro/internal/dam"
)

// Options configures a cache-aware lookahead array.
type Options struct {
	// BlockElems is B measured in elements (block bytes / element size).
	// It must be at least 2.
	BlockElems int
	// Epsilon positions the structure on the insert/search tradeoff
	// curve; it must lie in [0, 1].
	Epsilon float64
	// Space receives DAM charges; nil disables accounting.
	Space *dam.Space
}

// Array is a cache-aware lookahead array.
type Array struct {
	*cola.GCOLA
	blockElems int
	epsilon    float64
	growth     int
}

// New returns an empty cache-aware lookahead array with growth factor
// g = max(2, round(B^epsilon)).
func New(opt Options) *Array {
	if opt.BlockElems < 2 {
		panic("la: BlockElems must be at least 2")
	}
	if opt.Epsilon < 0 || opt.Epsilon > 1 {
		panic("la: Epsilon must lie in [0, 1]")
	}
	g := int(math.Round(math.Pow(float64(opt.BlockElems), opt.Epsilon)))
	if g < 2 {
		g = 2
	}
	return &Array{
		GCOLA: cola.New(cola.Options{
			Growth:         g,
			PointerDensity: cola.DefaultPointerDensity,
			Space:          opt.Space,
		}),
		blockElems: opt.BlockElems,
		epsilon:    opt.Epsilon,
		growth:     g,
	}
}

// GrowthFactor reports the derived growth factor g = Theta(B^epsilon).
func (a *Array) GrowthFactor() int { return a.growth }

// Epsilon reports the tradeoff parameter.
func (a *Array) Epsilon() float64 { return a.epsilon }

// BlockElems reports B in elements.
func (a *Array) BlockElems() int { return a.blockElems }
