// Package hypothesis turns the scenario generator into a falsification
// apparatus: each Bundle packages a quantitative claim from the paper —
// a predicted transfer-count ratio between two measured arms — together
// with the mechanism said to produce it and a control arm where the
// mechanism is removed and the effect must vanish. A bundle CONFIRMS
// only when both halves hold: the experiment ratio clears its predicted
// floor AND the control ratio stays under its ceiling. Anything else is
// a falsification, reported with the specific predicate that failed.
//
// Measurements are DAM block transfers per operation, which are
// deterministic for a fixed (scenario, seed, geometry) — so a bundle's
// verdict is bit-for-bit reproducible and can gate CI without flake
// margins for host noise.
package hypothesis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/harness"
	"repro/internal/registry"
)

// Metric names the measured quantity. Transfers/op is deterministic
// and gateable everywhere; ops/s is wall-clock, so bundles measuring it
// declare a MinCPU floor below which their verdict is advisory.
const (
	MetricTransfersPerOp = "transfers/op"
	MetricOpsPerSec      = "ops/s"
)

// VerdictSchema versions the verdict JSON; readers reject other values.
const VerdictSchema = 1

// Arm is one measured configuration: a structure (harness display name
// or registry kind), optional extra registry options layered on top,
// and the scenario it is driven through. Label, when set, names the
// variant in output (e.g. "2-COLA (pointer density 0)").
type Arm struct {
	Structure string
	Options   []registry.Option
	Scenario  string
	Label     string
}

func (a Arm) label() string {
	if a.Label != "" {
		return a.Label
	}
	return a.Structure
}

// Ratio is a predicted quotient of two arms' metric values.
type Ratio struct {
	Label string
	Num   Arm
	Den   Arm
}

// Bundle is one experiment: claim, mechanism, prediction, control.
type Bundle struct {
	Name      string
	Title     string
	Claim     string
	Mechanism string
	Metric    string

	// Experiment must observe a ratio >= MinRatio for the claim to hold.
	Experiment Ratio
	MinRatio   float64

	// Control re-runs the comparison with the mechanism removed; its
	// observed ratio must stay <= ControlMax or the bundle is falsified
	// (the effect did not vanish when its cause was taken away, so the
	// experiment ratio cannot be attributed to the mechanism).
	Control    Ratio
	ControlMax float64

	// Tolerance loosens both predicates multiplicatively: the experiment
	// floor becomes MinRatio*(1-Tolerance), the control ceiling
	// ControlMax*(1+Tolerance). Transfers are deterministic, so this
	// absorbs deliberate geometry drift (e.g. future block-size changes),
	// not run-to-run noise.
	Tolerance float64

	// Pinned geometry: every arm runs at exactly this size and cache so
	// the prediction is a statement about one reproducible experiment.
	LogN       int
	CacheBytes int64

	// Measure, when set, replaces the default transfers/op arm runner —
	// bundles whose metric is not a harness scenario measurement (e.g.
	// served throughput over a real socket) supply their own.
	Measure func(cfg harness.Config, r Ratio) (RatioResult, error)

	// MinCPU, when positive, marks the verdict advisory on hosts with
	// fewer CPUs: a wall-clock concurrency claim cannot fail honestly
	// on a machine that cannot run the arms concurrently. Advisory
	// falsifications are reported, never gated.
	MinCPU int
}

// ArmResult is one arm's measured value.
type ArmResult struct {
	Structure string  `json:"structure"`
	Scenario  string  `json:"scenario"`
	Value     float64 `json:"value"`
}

// RatioResult is one measured ratio.
type RatioResult struct {
	Label    string    `json:"label"`
	Num      ArmResult `json:"num"`
	Den      ArmResult `json:"den"`
	Observed float64   `json:"observed"`
}

// Prediction echoes the bundle's quantitative prediction in the verdict
// so a verdict file is self-describing.
type Prediction struct {
	MinRatio   float64 `json:"min_ratio"`
	ControlMax float64 `json:"control_max"`
	Tolerance  float64 `json:"tolerance"`
}

// Verdict is the JSON document streambench -hypothesis emits and
// perfgate -hypotheses consumes.
type Verdict struct {
	Schema     int         `json:"schema"`
	Name       string      `json:"name"`
	Title      string      `json:"title"`
	Claim      string      `json:"claim"`
	Mechanism  string      `json:"mechanism"`
	Metric     string      `json:"metric"`
	LogN       int         `json:"logn"`
	CacheBytes int64       `json:"cache_bytes"`
	Seed       uint64      `json:"seed"`
	Prediction Prediction  `json:"prediction"`
	Experiment RatioResult `json:"experiment"`
	Control    RatioResult `json:"control"`
	Confirmed  bool        `json:"confirmed"`
	// Reasons lists the failed predicates when falsified; empty when
	// confirmed.
	Reasons []string `json:"reasons,omitempty"`
	// Advisory marks a verdict measured below the bundle's CPU floor:
	// consumers report it but never gate on it.
	Advisory bool `json:"advisory,omitempty"`
	// AdvisoryReason says why the verdict is advisory.
	AdvisoryReason string `json:"advisory_reason,omitempty"`
}

var bundles = map[string]Bundle{}

func mustRegister(b Bundle) {
	if b.Name == "" {
		panic("hypothesis: bundle without name")
	}
	if _, dup := bundles[b.Name]; dup {
		panic("hypothesis: duplicate bundle " + b.Name)
	}
	bundles[b.Name] = b
}

// Names lists the registered bundles in sorted order.
func Names() []string {
	out := make([]string, 0, len(bundles))
	for name := range bundles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the named bundle.
func Get(name string) (Bundle, bool) {
	b, ok := bundles[name]
	return b, ok
}

// measureRatio runs both arms of r under cfg and returns the quotient.
func measureRatio(cfg harness.Config, r Ratio) (RatioResult, error) {
	num, err := cfg.MeasureScenario(r.Num.Structure, r.Num.Options, r.Num.Scenario)
	if err != nil {
		return RatioResult{}, fmt.Errorf("arm %s: %w", r.Num.label(), err)
	}
	den, err := cfg.MeasureScenario(r.Den.Structure, r.Den.Options, r.Den.Scenario)
	if err != nil {
		return RatioResult{}, fmt.Errorf("arm %s: %w", r.Den.label(), err)
	}
	out := RatioResult{
		Label: r.Label,
		Num:   ArmResult{Structure: r.Num.label(), Scenario: num.Scenario, Value: num.TransfersPerOp},
		Den:   ArmResult{Structure: r.Den.label(), Scenario: den.Scenario, Value: den.TransfersPerOp},
	}
	if den.TransfersPerOp <= 0 {
		return out, fmt.Errorf("ratio %q: denominator arm %s measured %g transfers/op", r.Label, r.Den.label(), den.TransfersPerOp)
	}
	out.Observed = num.TransfersPerOp / den.TransfersPerOp
	return out, nil
}

// Run measures both ratios of the named bundle at its pinned geometry
// (cfg supplies the seed and any fields the bundle does not pin) and
// judges the result. The returned error covers broken experiments —
// unknown bundle, unbuildable arm — never a falsified one: a clean
// falsification is a Verdict with Confirmed == false.
func Run(name string, cfg harness.Config) (Verdict, error) {
	b, ok := bundles[name]
	if !ok {
		return Verdict{}, fmt.Errorf("hypothesis: unknown bundle %q", name)
	}
	cfg.LogN = b.LogN
	cfg.CacheBytes = b.CacheBytes
	measure := b.Measure
	if measure == nil {
		measure = measureRatio
	}
	exp, err := measure(cfg, b.Experiment)
	if err != nil {
		return Verdict{}, fmt.Errorf("bundle %s: experiment %w", name, err)
	}
	ctl, err := measure(cfg, b.Control)
	if err != nil {
		return Verdict{}, fmt.Errorf("bundle %s: control %w", name, err)
	}
	v := Verdict{
		Schema:     VerdictSchema,
		Name:       b.Name,
		Title:      b.Title,
		Claim:      b.Claim,
		Mechanism:  b.Mechanism,
		Metric:     b.Metric,
		LogN:       b.LogN,
		CacheBytes: b.CacheBytes,
		Seed:       cfg.Seed,
		Prediction: Prediction{MinRatio: b.MinRatio, ControlMax: b.ControlMax, Tolerance: b.Tolerance},
		Experiment: exp,
		Control:    ctl,
	}
	v.Confirmed, v.Reasons = judge(b, exp.Observed, ctl.Observed)
	if b.MinCPU > 0 && runtime.NumCPU() < b.MinCPU {
		v.Advisory = true
		v.AdvisoryReason = fmt.Sprintf(
			"measured on %d CPU(s), bundle needs %d to run its arms concurrently; verdict reported, not gated",
			runtime.NumCPU(), b.MinCPU)
	}
	return v, nil
}

// judge applies the bundle's two predicates and reports every failed
// one (not just the first), so a doubly-wrong bundle reads as such.
func judge(b Bundle, exp, ctl float64) (bool, []string) {
	var reasons []string
	floor := b.MinRatio * (1 - b.Tolerance)
	if exp < floor {
		reasons = append(reasons, fmt.Sprintf(
			"experiment ratio %.3f below predicted floor %.3f (min %.3f, tolerance %.0f%%): the claimed advantage did not appear",
			exp, floor, b.MinRatio, b.Tolerance*100))
	}
	ceiling := b.ControlMax * (1 + b.Tolerance)
	if ctl > ceiling {
		reasons = append(reasons, fmt.Sprintf(
			"control ratio %.3f above ceiling %.3f (max %.3f, tolerance %.0f%%): the effect survived removal of its mechanism",
			ctl, ceiling, b.ControlMax, b.Tolerance*100))
	}
	return len(reasons) == 0, reasons
}

// ReadVerdict loads and validates one verdict file.
func ReadVerdict(path string) (Verdict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Verdict{}, err
	}
	var v Verdict
	if err := json.Unmarshal(data, &v); err != nil {
		return Verdict{}, fmt.Errorf("%s: %w", path, err)
	}
	if v.Schema != VerdictSchema {
		return Verdict{}, fmt.Errorf("%s: verdict schema %d, want %d", path, v.Schema, VerdictSchema)
	}
	if v.Name == "" {
		return Verdict{}, fmt.Errorf("%s: verdict without bundle name", path)
	}
	return v, nil
}

// WriteMarkdown renders verdicts as a GitHub-flavored markdown table
// (the hypotheses lane appends it to $GITHUB_STEP_SUMMARY).
func WriteMarkdown(w io.Writer, verdicts []Verdict) error {
	if len(verdicts) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "### Hypothesis verdicts\n\n|Bundle|Verdict|Experiment|Predicted ≥|Control|Allowed ≤|\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, v := range verdicts {
		verdict := "✅ confirmed"
		switch {
		case !v.Confirmed && v.Advisory:
			verdict = "⚠️ falsified (advisory)"
		case !v.Confirmed:
			verdict = "❌ falsified"
		case v.Advisory:
			verdict = "✅ confirmed (advisory)"
		}
		if _, err := fmt.Fprintf(w, "|%s|%s|%.3f|%.3f|%.3f|%.3f|\n",
			v.Name, verdict, v.Experiment.Observed, v.Prediction.MinRatio*(1-v.Prediction.Tolerance),
			v.Control.Observed, v.Prediction.ControlMax*(1+v.Prediction.Tolerance)); err != nil {
			return err
		}
	}
	for _, v := range verdicts {
		for _, r := range v.Reasons {
			if _, err := fmt.Fprintf(w, "\n- **%s**: %s", v.Name, r); err != nil {
				return err
			}
		}
		if v.Advisory {
			if _, err := fmt.Fprintf(w, "\n- **%s**: %s", v.Name, v.AdvisoryReason); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
