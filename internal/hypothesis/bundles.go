package hypothesis

import "repro/internal/registry"

// The seeded bundles. Geometry is pinned at N = 2^14 with a 64 KiB DAM
// cache (4 KiB blocks, so 16 resident blocks) — large enough that every
// structure spills well out of cache, small enough that each arm runs
// in well under a second, so CI can afford all bundles on every push.
// The predicted floors and ceilings sit at roughly half (resp. double)
// the measured ratios at this geometry; since transfers are
// deterministic, a breach means the mechanism itself changed, not that
// a run got unlucky.

func init() {
	mustRegister(Bundle{
		Name:  "cola-insert-advantage",
		Title: "COLA beats the B-tree on random-insert transfers",
		Claim: "Under uniformly random inserts the B-tree pays at least 5× " +
			"the block transfers per insert of the 2-COLA.",
		Mechanism: "Each random B-tree insert walks root-to-leaf and dirties a " +
			"leaf block holding few new keys, while the COLA only appends to " +
			"its smallest level and pays merges amortized O((log N)/B) — the " +
			"paper's Theorem 16 versus the B-tree's Ω(1) transfers per " +
			"out-of-cache insert.",
		Metric: MetricTransfersPerOp,
		Experiment: Ratio{
			Label: "B-tree / 2-COLA, uniform random inserts",
			Num:   Arm{Structure: "B-tree", Scenario: "uniform+steady+100w"},
			Den:   Arm{Structure: "2-COLA", Scenario: "uniform+steady+100w"},
		},
		MinRatio: 5,
		// Sequential inserts are the B-tree's best case: every insert hits
		// the same rightmost leaf, which stays cached, so the advantage
		// must invert (ratio well below 1). If the B-tree still paid 5×
		// here, the experiment ratio would be measuring something other
		// than random-access leaf dirtying.
		Control: Ratio{
			Label: "B-tree / 2-COLA, sequential inserts",
			Num:   Arm{Structure: "B-tree", Scenario: "sequential+steady+100w"},
			Den:   Arm{Structure: "2-COLA", Scenario: "sequential+steady+100w"},
		},
		ControlMax: 1,
		Tolerance:  0.1,
		LogN:       14,
		CacheBytes: 64 << 10,
	})

	mustRegister(Bundle{
		Name:  "lookahead-search-advantage",
		Title: "Lookahead pointers buy the COLA its search bound",
		Claim: "On a read-mostly mix the pointerless basic COLA pays at least " +
			"1.3× the search-path transfers of the 2-COLA with lookahead " +
			"pointers.",
		Mechanism: "Lookahead pointers bracket each level's search window to " +
			"O(1) blocks (Lemma 20), while the basic COLA binary-searches " +
			"every occupied level from scratch — O(log N) probes per level " +
			"whose deep positions are key-dependent and so keep missing the " +
			"cache.",
		Metric: MetricTransfersPerOp,
		Experiment: Ratio{
			Label: "basic COLA / 2-COLA, read-mostly",
			Num:   Arm{Structure: "basic-COLA", Scenario: "uniform+steady+95r5w"},
			Den:   Arm{Structure: "2-COLA", Scenario: "uniform+steady+95r5w"},
		},
		MinRatio: 1.3,
		// Zeroing the 2-COLA's pointer density (density 0 allocates no
		// lookahead budget at all) must erase the advantage: both arms
		// then binary-search every level and the ratio collapses to ~1.
		Control: Ratio{
			Label: "basic COLA / pointerless 2-COLA, read-mostly",
			Num:   Arm{Structure: "basic-COLA", Scenario: "uniform+steady+95r5w"},
			Den: Arm{
				Structure: "2-COLA",
				Options:   []registry.Option{registry.WithPointerDensity(0)},
				Scenario:  "uniform+steady+95r5w",
				Label:     "2-COLA (pointer density 0)",
			},
		},
		ControlMax: 1.05,
		Tolerance:  0.05,
		LogN:       14,
		CacheBytes: 64 << 10,
	})

	mustRegister(Bundle{
		Name:  "growth-factor-tradeoff",
		Title: "The growth factor trades search transfers for insert transfers",
		Claim: "On a skewed read-mostly mix the 2-COLA pays at least 1.5× the " +
			"transfers per op of the 8-COLA.",
		Mechanism: "A g-COLA has log_g N levels, and a search pays O(1) blocks per " +
			"level through its lookahead pointers — so growing g from 2 to 8 cuts " +
			"the levels (and the search-path transfers) threefold, while merges " +
			"move each element O(g/log g) times more, making inserts dearer. A " +
			"95%-read mix is dominated by the search side of that trade.",
		Metric: MetricTransfersPerOp,
		Experiment: Ratio{
			Label: "2-COLA / 8-COLA, zipf read-mostly",
			Num:   Arm{Structure: "2-COLA", Scenario: "zipf1.2+steady+95r5w"},
			Den:   Arm{Structure: "8-COLA", Scenario: "zipf1.2+steady+95r5w"},
		},
		MinRatio: 1.5,
		// A pure-insert workload never walks a search path, so the level
		// count stops mattering and the trade flips: the 8-COLA's merges
		// move each element more, and the 2-COLA must be no dearer than it
		// (ratio <= 1). If the 2-COLA still paid 1.5× here, the experiment
		// ratio could not be attributed to search-path levels.
		Control: Ratio{
			Label: "2-COLA / 8-COLA, uniform pure inserts",
			Num:   Arm{Structure: "2-COLA", Scenario: "uniform+steady+100w"},
			Den:   Arm{Structure: "8-COLA", Scenario: "uniform+steady+100w"},
		},
		ControlMax: 1,
		Tolerance:  0.1,
		LogN:       14,
		CacheBytes: 64 << 10,
	})

	mustRegister(Bundle{
		Name:  "delete-churn-tombstones",
		Title: "Delete-heavy churn is a COLA weakness, not a B-tree one",
		Claim: "A 60% insert / 40% delete churn costs the 2-COLA at least 4× " +
			"the transfers per op of its pure-insert workload.",
		Mechanism: "A COLA delete is a full search (the key must be found " +
			"before a tombstone is queued) plus a tombstone insert, and the " +
			"tombstones keep the physical structure growing until merges " +
			"annihilate them — so churn pays search-path reads on every " +
			"delete where pure inserts pay only amortized merge writes.",
		Metric: MetricTransfersPerOp,
		Experiment: Ratio{
			Label: "2-COLA churn / 2-COLA pure inserts",
			Num:   Arm{Structure: "2-COLA", Scenario: "uniform+steady+60w40d"},
			Den:   Arm{Structure: "2-COLA", Scenario: "uniform+steady+100w"},
		},
		MinRatio: 4,
		// The B-tree deletes in place: its delete walks the same
		// root-to-leaf path as an insert, so the identical churn must cost
		// it no more than its pure-insert workload (within tolerance). If
		// churn were expensive for the B-tree too, the COLA's penalty
		// could not be pinned on tombstones.
		Control: Ratio{
			Label: "B-tree churn / B-tree pure inserts",
			Num:   Arm{Structure: "B-tree", Scenario: "uniform+steady+60w40d"},
			Den:   Arm{Structure: "B-tree", Scenario: "uniform+steady+100w"},
		},
		ControlMax: 1.2,
		Tolerance:  0.1,
		LogN:       14,
		CacheBytes: 64 << 10,
	})
}
