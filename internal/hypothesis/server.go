package hypothesis

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/harness"
	"repro/internal/loadgen"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// The served edition of the shared-reader claim (PR 5 / E11): a
// shared-read-safe inner lets a single shard's RLock admit concurrent
// GETs, so served read throughput grows with connections; swap the
// inner for one without shared-read support and the same lock
// serializes every search, collapsing the ratio. Both arms run over a
// real loopback socket through the load generator, so the measurement
// includes the whole serving stack.
//
// Ops/s is wall-clock: on a host with fewer than MinCPU CPUs the arms
// cannot actually run concurrently, so the verdict is advisory there
// (reported by CI, never gated).
func init() {
	mustRegister(Bundle{
		Name:  "server-shared-read-scaling",
		Title: "Served GETs scale with connections only under shared reads",
		Claim: "GET throughput over the wire at 4 connections exceeds 1 connection by >= 1.5x when the " +
			"single shard's inner dictionary supports shared-read bracketing",
		Mechanism: "shard.Map.Search takes RLock and brackets Begin/EndSharedReads when the inner probes " +
			"shared-read safe, so concurrent connections' searches overlap; an exclusive inner downgrades " +
			"the same path to a full Lock and serializes them",
		Metric:     MetricOpsPerSec,
		Experiment: serveRatio("gcola", "shared inner: 4-conn / 1-conn GET throughput"),
		MinRatio:   1.5,
		Control:    serveRatio("deamortized", "exclusive inner: 4-conn / 1-conn GET throughput"),
		ControlMax: 1.4,
		Tolerance:  0.25,
		LogN:       14,
		CacheBytes: 1 << 20,
		Measure:    measureServeRatio,
		MinCPU:     4,
	})
}

// serveConnsHigh / serveConnsLow are the two operating points of both
// ratios.
const (
	serveConnsHigh = 4
	serveConnsLow  = 1
)

// serveRatio builds the two arms of one served-throughput ratio. The
// arm scenario encodes the connection count as "<conns>x<spec>" for
// measureServeRatio to decode (the default harness runner never sees
// these arms).
func serveRatio(kind, label string) Ratio {
	return Ratio{
		Label: label,
		Num: Arm{
			Structure: kind,
			Scenario:  fmt.Sprintf("%dx uniform+steady+100r", serveConnsHigh),
			Label:     fmt.Sprintf("sharded-1(%s) @%d conns", kind, serveConnsHigh),
		},
		Den: Arm{
			Structure: kind,
			Scenario:  fmt.Sprintf("%dx uniform+steady+100r", serveConnsLow),
			Label:     fmt.Sprintf("sharded-1(%s) @%d conn", kind, serveConnsLow),
		},
	}
}

// measureServeRatio is the custom arm runner: each arm serves a
// single-shard map over its kind on a loopback listener and measures
// closed-loop GET ops/s at the arm's connection count.
func measureServeRatio(cfg harness.Config, r Ratio) (RatioResult, error) {
	num, err := measureServeArm(cfg, r.Num)
	if err != nil {
		return RatioResult{}, fmt.Errorf("arm %s: %w", r.Num.Label, err)
	}
	den, err := measureServeArm(cfg, r.Den)
	if err != nil {
		return RatioResult{}, fmt.Errorf("arm %s: %w", r.Den.Label, err)
	}
	out := RatioResult{Label: r.Label, Num: num, Den: den}
	if den.Value <= 0 {
		return out, fmt.Errorf("ratio %q: denominator arm %s measured %g ops/s", r.Label, r.Den.Label, den.Value)
	}
	out.Observed = num.Value / den.Value
	return out, nil
}

// measureServeArm runs one arm. Arm.Scenario is "<conns>x <spec>".
func measureServeArm(cfg harness.Config, a Arm) (ArmResult, error) {
	connsStr, spec, ok := strings.Cut(a.Scenario, "x ")
	if !ok {
		return ArmResult{}, fmt.Errorf("arm scenario %q: want \"<conns>x <spec>\"", a.Scenario)
	}
	conns, err := strconv.Atoi(connsStr)
	if err != nil || conns <= 0 {
		return ArmResult{}, fmt.Errorf("arm scenario %q: bad connection count", a.Scenario)
	}
	sc, err := workload.Parse(spec)
	if err != nil {
		return ArmResult{}, err
	}
	sc.KeySpace = uint64(1) << uint(cfg.LogN)
	sc.Seed = cfg.Seed

	inner, err := registry.Build(a.Structure, a.Options...)
	if err != nil {
		return ArmResult{}, err
	}
	m := shard.New(
		shard.WithShards(1),
		shard.WithDictionary(func(int, *dam.Space) core.Dictionary { return inner }),
	)
	srv := server.New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ArmResult{}, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Shutdown(5 * time.Second); <-done }()

	const perConn = 1 << 13
	sum, err := loadgen.Run(loadgen.Config{
		Addr:     ln.Addr().String(),
		Scenario: sc,
		Conns:    conns,
		Ops:      conns * perConn,
		Preload:  1 << uint(cfg.LogN),
	})
	if err != nil {
		return ArmResult{}, err
	}
	return ArmResult{Structure: a.Label, Scenario: a.Scenario, Value: sum.OpsPerSec()}, nil
}
