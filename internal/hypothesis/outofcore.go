package hypothesis

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// The out-of-core edition of the repo's foundational assumption (PR 9 /
// E15): every figure substitutes DAM-charged transfers for real disk
// I/O, and this bundle checks the substitution against a structure that
// actually performs it. A gcola built with WithSpillDir keeps its cold
// levels in chunk-aligned files behind a page cache sized like the DAM
// cache M; at that starved geometry the chunk reads a random search
// really performs must land within 2x of the reads the model charges.
// The control removes the starvation — a page cache big enough to hold
// every spill file — and the actual reads must collapse toward zero
// while the charges, computed against the unchanged DAM geometry, do
// not: the agreement is produced by the shared geometry, not by the
// counters measuring the same thing twice.
func init() {
	mustRegister(Bundle{
		Name:  "dam-model-fidelity",
		Title: "DAM charges predict real out-of-core block reads",
		Claim: "At a cache-starved geometry the chunk reads per random search a spilled " +
			"gcola actually performs are within 2x of the DAM-charged block reads " +
			"(agreement min(charged,actual)/max(charged,actual) >= 0.5).",
		Mechanism: "The spill store and the DAM model share the geometry — 4 KiB blocks, " +
			"matching cache budgets — and the spilled search path issues its charges at " +
			"the same logical offsets it reads through the page cache, so a cold random " +
			"search pays roughly one real chunk read per charged block of every spilled " +
			"level; only the RAM-resident top levels and residual cache hits separate " +
			"the two counts.",
		Metric:     MetricTransfersPerOp,
		Experiment: fidelityRatio("charged vs actual reads/search, starved page cache", fidelityAgreement, fidelityStarvedCache),
		MinRatio:   0.5,
		Control:    fidelityRatio("actual/charged reads/search, page cache holds everything", fidelityQuotient, fidelityFullCache),
		ControlMax: 0.1,
		Tolerance:  0.2,
		LogN:       14,
		CacheBytes: 64 << 10,
		Measure:    measureFidelity,
	})
}

// The two page-cache operating points: starved matches the DAM cache M
// (16 chunks), full exceeds the total spill-file footprint at N = 2^14
// (~600 KiB) by two orders of magnitude.
const (
	fidelityStarvedCache = 64 << 10
	fidelityFullCache    = 64 << 20
)

// The two observation modes measureFidelity decodes from Arm.Scenario.
const (
	fidelityAgreement = "agreement"
	fidelityQuotient  = "actual/charged"
)

// fidelityRatio builds one ratio over a single spilled-gcola run: both
// arms come from the same search phase (numerator the actual chunk
// reads, denominator the DAM charges), and the scenario string encodes
// the observation mode plus the page-cache budget for measureFidelity
// to decode.
func fidelityRatio(label, mode string, spillCache int64) Ratio {
	scen := fmt.Sprintf("%s spill-cache=%d", mode, spillCache)
	return Ratio{
		Label: label,
		Num:   Arm{Structure: "gcola (spilled)", Scenario: scen, Label: "actual chunk reads/search"},
		Den:   Arm{Structure: "gcola (spilled)", Scenario: scen, Label: "DAM-charged reads/search"},
	}
}

// measureFidelity is the custom arm runner: one out-of-core search run
// per ratio, charged and actual reads measured side by side.
func measureFidelity(cfg harness.Config, r Ratio) (RatioResult, error) {
	mode, cacheField, ok := strings.Cut(r.Num.Scenario, " spill-cache=")
	if !ok {
		return RatioResult{}, fmt.Errorf("arm scenario %q: want \"<mode> spill-cache=<bytes>\"", r.Num.Scenario)
	}
	spillCache, err := strconv.ParseInt(cacheField, 10, 64)
	if err != nil || spillCache <= 0 {
		return RatioResult{}, fmt.Errorf("arm scenario %q: bad spill-cache budget", r.Num.Scenario)
	}
	const searches = 1 << 13
	charged, actual, err := cfg.OutOfCoreSearchTransfers(spillCache, searches)
	if err != nil {
		return RatioResult{}, err
	}
	out := RatioResult{
		Label: r.Label,
		Num:   ArmResult{Structure: r.Num.Label, Scenario: r.Num.Scenario, Value: actual},
		Den:   ArmResult{Structure: r.Den.Label, Scenario: r.Den.Scenario, Value: charged},
	}
	if charged <= 0 {
		return out, fmt.Errorf("ratio %q: charged %g transfers/search", r.Label, charged)
	}
	switch mode {
	case fidelityQuotient:
		out.Observed = actual / charged
	case fidelityAgreement:
		if actual <= 0 {
			return out, fmt.Errorf("ratio %q: a starved cache performed no reads at all", r.Label)
		}
		q := actual / charged
		if q > 1 {
			q = 1 / q
		}
		out.Observed = q
	default:
		return out, fmt.Errorf("arm scenario %q: unknown mode %q", r.Num.Scenario, mode)
	}
	return out, nil
}
