package hypothesis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/workload"
)

// Every registered bundle must be internally valid: parseable scenario
// specs, positive thresholds, pinned geometry, and the gateable metric.
func TestBundlesWellFormed(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("%d bundles registered, want >= 3", len(names))
	}
	for _, name := range names {
		b, ok := Get(name)
		if !ok {
			t.Fatalf("Names() lists %q but Get can't find it", name)
		}
		if b.Claim == "" || b.Mechanism == "" || b.Title == "" {
			t.Errorf("%s: claim/mechanism/title must all be stated", name)
		}
		if b.Measure == nil {
			if b.Metric != MetricTransfersPerOp {
				t.Errorf("%s: metric %q is not gateable by the default runner", name, b.Metric)
			}
		} else if b.Metric == MetricOpsPerSec && b.MinCPU <= 0 {
			// Wall-clock bundles must declare the CPU floor that makes
			// their verdict advisory on starved hosts.
			t.Errorf("%s: ops/s bundle without a MinCPU floor", name)
		}
		if b.MinRatio <= 0 || b.ControlMax <= 0 || b.Tolerance < 0 || b.Tolerance >= 1 {
			t.Errorf("%s: nonsensical thresholds min=%g max=%g tol=%g", name, b.MinRatio, b.ControlMax, b.Tolerance)
		}
		if b.LogN <= 0 || b.CacheBytes <= 0 {
			t.Errorf("%s: geometry not pinned (logn=%d cache=%d)", name, b.LogN, b.CacheBytes)
		}
		if b.Measure == nil {
			// Custom-Measure bundles own their arm encoding; only the
			// default runner requires parseable workload specs.
			for _, arm := range []Arm{b.Experiment.Num, b.Experiment.Den, b.Control.Num, b.Control.Den} {
				if _, err := workload.Parse(arm.Scenario); err != nil {
					t.Errorf("%s: arm %s scenario %q: %v", name, arm.label(), arm.Scenario, err)
				}
			}
		}
	}
}

func TestJudge(t *testing.T) {
	b := Bundle{MinRatio: 2, ControlMax: 1, Tolerance: 0.1}
	cases := []struct {
		exp, ctl float64
		ok       bool
		mentions string
	}{
		{exp: 3, ctl: 0.5, ok: true},
		{exp: 1.81, ctl: 0.5, ok: true}, // floor = 1.8
		{exp: 3, ctl: 1.09, ok: true},   // ceiling = 1.1
		{exp: 1.7, ctl: 0.5, ok: false, mentions: "below predicted floor"},
		{exp: 3, ctl: 1.2, ok: false, mentions: "survived removal"},
		{exp: 1.7, ctl: 1.2, ok: false},
	}
	for _, c := range cases {
		ok, reasons := judge(b, c.exp, c.ctl)
		if ok != c.ok {
			t.Errorf("judge(exp=%g, ctl=%g) = %v, want %v (%v)", c.exp, c.ctl, ok, c.ok, reasons)
		}
		if c.mentions != "" {
			found := false
			for _, r := range reasons {
				if strings.Contains(r, c.mentions) {
					found = true
				}
			}
			if !found {
				t.Errorf("judge(exp=%g, ctl=%g) reasons %v lack %q", c.exp, c.ctl, reasons, c.mentions)
			}
		}
		if !c.ok && len(reasons) == 0 {
			t.Errorf("falsified verdict without reasons (exp=%g ctl=%g)", c.exp, c.ctl)
		}
	}
	// A doubly-wrong bundle reports both failures.
	if _, reasons := judge(b, 1.0, 2.0); len(reasons) != 2 {
		t.Errorf("doubly-failed judge gave %d reasons, want 2: %v", len(reasons), reasons)
	}
}

func TestVerdictRoundTripAndSchema(t *testing.T) {
	dir := t.TempDir()
	v := Verdict{
		Schema: VerdictSchema,
		Name:   "x",
		Metric: MetricTransfersPerOp,
		Experiment: RatioResult{
			Label:    "a/b",
			Num:      ArmResult{Structure: "a", Scenario: "uniform+steady+100w", Value: 2},
			Den:      ArmResult{Structure: "b", Scenario: "uniform+steady+100w", Value: 1},
			Observed: 2,
		},
		Confirmed: false,
		Reasons:   []string{"because"},
	}
	path := filepath.Join(dir, "v.json")
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVerdict(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != v.Name || got.Experiment.Observed != v.Experiment.Observed || got.Confirmed || len(got.Reasons) != 1 {
		t.Fatalf("round trip mangled verdict: %+v", got)
	}

	// Wrong schema and missing name must both be rejected.
	for _, breakIt := range []func(*Verdict){
		func(v *Verdict) { v.Schema = VerdictSchema + 1 },
		func(v *Verdict) { v.Name = "" },
	} {
		bad := v
		breakIt(&bad)
		data, _ := json.Marshal(bad)
		badPath := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(badPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadVerdict(badPath); err == nil {
			t.Errorf("ReadVerdict accepted invalid verdict %+v", bad)
		}
	}
	if _, err := ReadVerdict(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("ReadVerdict accepted a missing file")
	}
}

func TestRunUnknownBundle(t *testing.T) {
	if _, err := Run("no-such-bundle", harness.Config{}); err == nil {
		t.Fatal("unknown bundle did not error")
	}
}

// End-to-end: every seeded bundle must confirm at its pinned geometry.
// This is the same determinism CI's hypotheses lane relies on, so a
// failure here means the claim (or the structures) changed, not noise.
func TestSeededBundlesConfirm(t *testing.T) {
	if testing.Short() {
		t.Skip("bundle arms drive 4×2^14 ops each")
	}
	for _, name := range Names() {
		v, err := Run(name, harness.Config{Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Confirmed && !v.Advisory {
			t.Errorf("%s falsified: %v (experiment %.3f, control %.3f)", name, v.Reasons, v.Experiment.Observed, v.Control.Observed)
		}
		if v.Experiment.Num.Value <= 0 || v.Experiment.Den.Value <= 0 {
			t.Errorf("%s: experiment arms measured nonpositive values", name)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	verdicts := []Verdict{
		{Name: "a", Confirmed: true, Prediction: Prediction{MinRatio: 2, ControlMax: 1, Tolerance: 0.1},
			Experiment: RatioResult{Observed: 3}, Control: RatioResult{Observed: 0.5}},
		{Name: "b", Confirmed: false, Reasons: []string{"effect absent"},
			Prediction: Prediction{MinRatio: 2, ControlMax: 1},
			Experiment: RatioResult{Observed: 1.1}, Control: RatioResult{Observed: 0.5}},
	}
	if err := WriteMarkdown(&sb, verdicts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"confirmed", "falsified", "effect absent", "|a|", "|b|"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown lacks %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	if err := WriteMarkdown(&empty, nil); err != nil || empty.Len() != 0 {
		t.Errorf("empty verdict list should write nothing, got %q (err %v)", empty.String(), err)
	}
}
