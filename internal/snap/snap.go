// Package snap implements the repository's self-describing snapshot
// container. A snapshot file is one container:
//
//	magic "RSNP" | container version u32 |
//	header length u32 | header bytes | header CRC32 u32 |
//	payload length u64 | payload bytes | payload CRC32 u32
//
// all little-endian, CRC32 over the IEEE polynomial. The header is an
// encoded Spec — the registry kind that wrote the payload plus the
// options it was built with — so a loader can reconstruct the right
// structure without the caller knowing what was saved. The payload is
// whatever the structure's own core.Snapshotter.WriteTo emitted; the
// container never interprets it.
//
// Decode verifies both checksums before returning, so a structure's
// ReadFrom only ever sees payload bytes that survived CRC verification
// — corruption is reported as a typed error here, not as a misparse
// inside a structure decoder. The cost is that Encode and Decode buffer
// the payload in memory; snapshots are bounded by the structures
// themselves (tens of bytes per element), which is the same order as
// the live structure being saved.
//
// The format is designed for safe decoding of hostile input: every
// length field is bounded before use, allocations grow with bytes
// actually read rather than with claimed lengths, and all failures are
// wrapped core.ErrBadMagic / core.ErrBadVersion / core.ErrCorrupt.
package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

const (
	// Magic identifies a container stream.
	Magic = "RSNP"
	// Version is the container format version this build reads and
	// writes.
	Version = 1

	// Decode limits. A legitimate header is tens to hundreds of bytes
	// (kind name plus a handful of options); the cap is generous so
	// deeply nested wrapper specs fit, while a corrupt length field
	// fails fast instead of driving a huge allocation.
	maxHeaderBytes = 1 << 20
	maxStringLen   = 1 << 12
	maxOpts        = 64
	maxSpecDepth   = 8
)

// Option value kinds, the tag byte of an encoded Opt.
const (
	tagInt byte = iota
	tagFloat
	tagString
	tagSpec
	tagIntPair
)

// Opt is one recorded build option: a name (the registry's canonical
// "WithX" constants) and a tagged value. Exactly one value field is
// meaningful, selected by Tag.
type Opt struct {
	Name  string
	Tag   byte
	Int   int64
	Int2  int64 // second value of an IntPair
	Float float64
	Str   string
	Spec  *Spec // nested spec (a wrapper kind's inner selection)
}

// Int makes an integer-valued option.
func Int(name string, v int64) Opt { return Opt{Name: name, Tag: tagInt, Int: v} }

// IntPair makes a two-integer option (e.g. a block/cache geometry).
func IntPair(name string, a, b int64) Opt {
	return Opt{Name: name, Tag: tagIntPair, Int: a, Int2: b}
}

// Float makes a float-valued option.
func Float(name string, v float64) Opt { return Opt{Name: name, Tag: tagFloat, Float: v} }

// String makes a string-valued option.
func String(name, v string) Opt { return Opt{Name: name, Tag: tagString, Str: v} }

// Nested makes a spec-valued option (a wrapper kind's inner structure).
func Nested(name string, s *Spec) Opt { return Opt{Name: name, Tag: tagSpec, Spec: s} }

// Spec records how to rebuild the structure a payload belongs to: the
// registry kind and the serializable options it was built with.
type Spec struct {
	Kind string
	Opts []Opt
}

// Encode writes one container: the spec as the header, then the
// payload produced by wt, both CRC-framed. It returns the total bytes
// written.
func Encode(w io.Writer, spec *Spec, wt io.WriterTo) (int64, error) {
	var header bytes.Buffer
	if err := encodeSpec(&header, spec, 0); err != nil {
		return 0, err
	}
	// The payload is buffered once (its length and checksum precede and
	// follow it on the wire); everything else streams straight to w, so
	// peak memory is one payload copy, not two.
	var payload bytes.Buffer
	if _, err := wt.WriteTo(&payload); err != nil {
		return 0, fmt.Errorf("snap: encoding payload: %w", err)
	}

	var pre bytes.Buffer
	pre.Grow(len(Magic) + 4 + 4 + header.Len() + 4 + 8)
	pre.WriteString(Magic)
	putU32(&pre, Version)
	putU32(&pre, uint32(header.Len()))
	pre.Write(header.Bytes())
	putU32(&pre, crc32.ChecksumIEEE(header.Bytes()))
	putU64(&pre, uint64(payload.Len()))

	var n int64
	for _, part := range [][]byte{pre.Bytes(), payload.Bytes(), crcBytes(payload.Bytes())} {
		k, err := w.Write(part)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// crcBytes is the little-endian CRC32 trailer of b.
func crcBytes(b []byte) []byte {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], crc32.ChecksumIEEE(b))
	return s[:]
}

// DecodeHeader reads and verifies only the container preamble and
// header, returning the spec without touching the payload — for
// listing tools that want to know what a snapshot holds without paying
// to read (and checksum) its contents. The reader is left positioned
// at the payload length field.
func DecodeHeader(r io.Reader) (*Spec, error) {
	spec, err := decodeHeaderFrom(r)
	return spec, err
}

// Decode reads one container, verifies both checksums, and returns the
// spec together with a reader over the verified payload bytes. Failures
// wrap the typed core errors: core.ErrBadMagic (not a container),
// core.ErrBadVersion (written by a newer format), core.ErrCorrupt
// (truncation or checksum mismatch anywhere).
func Decode(r io.Reader) (*Spec, *bytes.Reader, error) {
	spec, err := decodeHeaderFrom(r)
	if err != nil {
		return nil, nil, err
	}

	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("snap: payload length truncated: %w", core.ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(lenBuf[:])
	if payloadLen > math.MaxInt64 {
		return nil, nil, fmt.Errorf("snap: payload length %d out of range: %w", payloadLen, core.ErrCorrupt)
	}
	// Copy through a limited reader into a growing buffer: the
	// allocation tracks bytes actually present, so a corrupt length
	// fails with ErrCorrupt instead of a giant up-front make.
	var payload bytes.Buffer
	copied, err := io.Copy(&payload, io.LimitReader(r, int64(payloadLen)))
	if err != nil || uint64(copied) != payloadLen {
		return nil, nil, fmt.Errorf("snap: payload truncated at %d of %d bytes: %w",
			copied, payloadLen, core.ErrCorrupt)
	}
	var sums [4]byte
	if _, err := io.ReadFull(r, sums[:]); err != nil {
		return nil, nil, fmt.Errorf("snap: payload checksum truncated: %w", core.ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(payload.Bytes()), binary.LittleEndian.Uint32(sums[:]); got != want {
		return nil, nil, fmt.Errorf("snap: payload checksum %08x, stored %08x: %w", got, want, core.ErrCorrupt)
	}
	return spec, bytes.NewReader(payload.Bytes()), nil
}

// decodeHeaderFrom consumes and verifies the preamble and header.
func decodeHeaderFrom(r io.Reader) (*Spec, error) {
	// The magic is checked on its own before anything else is read, so a
	// stream that is not a container at all — however short — reports
	// ErrBadMagic, and ErrCorrupt is reserved for damage past a valid
	// preamble.
	var fixed [12]byte
	if n, err := io.ReadFull(r, fixed[:4]); err != nil {
		// Only a non-empty prefix of the magic is evidence of a torn
		// container; an empty stream matches the empty prefix vacuously
		// and must still report "not a container".
		if n > 0 && string(fixed[:n]) == Magic[:n] {
			return nil, fmt.Errorf("snap: container preamble truncated: %w", core.ErrCorrupt)
		}
		return nil, fmt.Errorf("snap: %d-byte stream is not a container: %w", n, core.ErrBadMagic)
	}
	if string(fixed[:4]) != Magic {
		return nil, fmt.Errorf("snap: magic %q, want %q: %w", fixed[:4], Magic, core.ErrBadMagic)
	}
	if _, err := io.ReadFull(r, fixed[4:]); err != nil {
		return nil, fmt.Errorf("snap: container preamble truncated: %w", core.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != Version {
		return nil, fmt.Errorf("snap: container version %d, this build reads %d: %w",
			v, Version, core.ErrBadVersion)
	}
	headerLen := binary.LittleEndian.Uint32(fixed[8:12])
	if headerLen > maxHeaderBytes {
		return nil, fmt.Errorf("snap: header length %d exceeds limit %d: %w",
			headerLen, maxHeaderBytes, core.ErrCorrupt)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("snap: header truncated: %w", core.ErrCorrupt)
	}
	var sums [4]byte
	if _, err := io.ReadFull(r, sums[:]); err != nil {
		return nil, fmt.Errorf("snap: header checksum truncated: %w", core.ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(header), binary.LittleEndian.Uint32(sums[:]); got != want {
		return nil, fmt.Errorf("snap: header checksum %08x, stored %08x: %w", got, want, core.ErrCorrupt)
	}
	spec, rest, err := decodeSpec(header, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("snap: %d trailing header bytes: %w", len(rest), core.ErrCorrupt)
	}
	return spec, nil
}

// encodeSpec appends the header encoding of s:
//
//	kind string | opt count u16 | per opt: name string | tag u8 | value
//
// where string is u16 length + bytes, Int/Float/IntPair values are
// 8-byte words, and tagSpec recurses.
func encodeSpec(b *bytes.Buffer, s *Spec, depth int) error {
	if depth > maxSpecDepth {
		return fmt.Errorf("snap: spec nesting deeper than %d", maxSpecDepth)
	}
	if err := putString(b, s.Kind); err != nil {
		return err
	}
	if len(s.Opts) > maxOpts {
		return fmt.Errorf("snap: %d options exceed limit %d", len(s.Opts), maxOpts)
	}
	putU16(b, uint16(len(s.Opts)))
	for _, o := range s.Opts {
		if err := putString(b, o.Name); err != nil {
			return err
		}
		b.WriteByte(o.Tag)
		switch o.Tag {
		case tagInt:
			putU64(b, uint64(o.Int))
		case tagIntPair:
			putU64(b, uint64(o.Int))
			putU64(b, uint64(o.Int2))
		case tagFloat:
			putU64(b, math.Float64bits(o.Float))
		case tagString:
			if err := putString(b, o.Str); err != nil {
				return err
			}
		case tagSpec:
			if o.Spec == nil {
				return fmt.Errorf("snap: option %q has a nil nested spec", o.Name)
			}
			if err := encodeSpec(b, o.Spec, depth+1); err != nil {
				return err
			}
		default:
			return fmt.Errorf("snap: option %q has unknown tag %d", o.Name, o.Tag)
		}
	}
	return nil
}

// decodeSpec parses one spec from the front of b, returning the
// remaining bytes. All limits mirror encodeSpec's.
func decodeSpec(b []byte, depth int) (*Spec, []byte, error) {
	if depth > maxSpecDepth {
		return nil, nil, fmt.Errorf("snap: spec nesting deeper than %d: %w", maxSpecDepth, core.ErrCorrupt)
	}
	kind, b, err := getString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("snap: spec truncated before option count: %w", core.ErrCorrupt)
	}
	nopts := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if nopts > maxOpts {
		return nil, nil, fmt.Errorf("snap: option count %d exceeds limit %d: %w", nopts, maxOpts, core.ErrCorrupt)
	}
	spec := &Spec{Kind: kind, Opts: make([]Opt, 0, nopts)}
	for i := 0; i < nopts; i++ {
		var o Opt
		if o.Name, b, err = getString(b); err != nil {
			return nil, nil, err
		}
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("snap: option %q truncated before tag: %w", o.Name, core.ErrCorrupt)
		}
		o.Tag, b = b[0], b[1:]
		switch o.Tag {
		case tagInt:
			var v uint64
			if v, b, err = getU64(b); err != nil {
				return nil, nil, err
			}
			o.Int = int64(v)
		case tagIntPair:
			var v, v2 uint64
			if v, b, err = getU64(b); err != nil {
				return nil, nil, err
			}
			if v2, b, err = getU64(b); err != nil {
				return nil, nil, err
			}
			o.Int, o.Int2 = int64(v), int64(v2)
		case tagFloat:
			var v uint64
			if v, b, err = getU64(b); err != nil {
				return nil, nil, err
			}
			o.Float = math.Float64frombits(v)
		case tagString:
			if o.Str, b, err = getString(b); err != nil {
				return nil, nil, err
			}
		case tagSpec:
			if o.Spec, b, err = decodeSpec(b, depth+1); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("snap: option %q has unknown tag %d: %w", o.Name, o.Tag, core.ErrCorrupt)
		}
		spec.Opts = append(spec.Opts, o)
	}
	return spec, b, nil
}

func putU16(b *bytes.Buffer, v uint16) {
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], v)
	b.Write(s[:])
}

func putU32(b *bytes.Buffer, v uint32) {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	b.Write(s[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], v)
	b.Write(s[:])
}

func putString(b *bytes.Buffer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("snap: string of %d bytes exceeds limit %d", len(s), maxStringLen)
	}
	putU16(b, uint16(len(s)))
	b.WriteString(s)
	return nil
}

func getString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("snap: string length truncated: %w", core.ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > maxStringLen {
		return "", nil, fmt.Errorf("snap: string of %d bytes exceeds limit %d: %w", n, maxStringLen, core.ErrCorrupt)
	}
	if len(b) < n {
		return "", nil, fmt.Errorf("snap: string truncated: %w", core.ErrCorrupt)
	}
	return string(b[:n]), b[n:], nil
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("snap: word truncated: %w", core.ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}
