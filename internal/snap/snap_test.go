package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// payloadBytes is a trivial WriterTo for container tests.
type payloadBytes []byte

func (p payloadBytes) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p)
	return int64(n), err
}

func testSpec() *Spec {
	return &Spec{
		Kind: "sharded",
		Opts: []Opt{
			Int("WithShards", 8),
			IntPair("WithShardDAM", 4096, 1<<20),
			Nested("WithInner", &Spec{
				Kind: "gcola",
				Opts: []Opt{
					Int("WithGrowthFactor", 4),
					Float("WithPointerDensity", 0.1),
					String("WithWALPath", "x.wal"),
				},
			}),
		},
	}
}

func encodeValid(t testing.TB, spec *Spec, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Encode(&buf, spec, payloadBytes(payload)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	want := testSpec()
	payload := []byte("structure payload bytes \x00\x01\x02")
	data := encodeValid(t, want, payload)

	got, pr, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spec mismatch:\n got %+v\nwant %+v", got, want)
	}
	back, err := io.ReadAll(pr)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatalf("payload mismatch: %q (%v)", back, err)
	}
}

func TestContainerEmptyPayloadAndOpts(t *testing.T) {
	data := encodeValid(t, &Spec{Kind: "cola"}, nil)
	got, pr, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "cola" || len(got.Opts) != 0 || pr.Len() != 0 {
		t.Fatalf("got %+v, payload len %d", got, pr.Len())
	}
}

func TestContainerTypedErrors(t *testing.T) {
	data := encodeValid(t, testSpec(), []byte("payload"))

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), data...)
		copy(b, "JUNK")
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[4:8], Version+1)
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrBadVersion) {
			t.Fatalf("got %v, want ErrBadVersion", err)
		}
	})
	t.Run("not a snapshot at all", func(t *testing.T) {
		if _, _, err := Decode(strings.NewReader("hello world, definitely not a container")); !errors.Is(err, core.ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		// Zero bytes is "not a container", not a torn one: the empty
		// prefix matches the magic vacuously and must not read as damage.
		if _, _, err := Decode(strings.NewReader("")); !errors.Is(err, core.ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("header bit flip", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[14] ^= 0x40 // inside the header bytes
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[len(b)-6] ^= 0x01 // inside the payload bytes
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("oversized header length", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[8:12], maxHeaderBytes+1)
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("lying payload length", func(t *testing.T) {
		b := append([]byte(nil), data...)
		// The payload length sits right after header+CRC; find it by
		// recomputing the layout.
		hlen := binary.LittleEndian.Uint32(b[8:12])
		off := 12 + int(hlen) + 4
		binary.LittleEndian.PutUint64(b[off:off+8], 1<<40)
		if _, _, err := Decode(bytes.NewReader(b)); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("every truncation point", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("accepted container truncated at %d/%d", cut, len(data))
			}
		}
	})
}

func TestContainerLimits(t *testing.T) {
	if _, err := Encode(io.Discard, &Spec{Kind: strings.Repeat("k", maxStringLen+1)}, payloadBytes(nil)); err == nil {
		t.Fatal("Encode accepted an oversized kind name")
	}
	deep := &Spec{Kind: "leaf"}
	for i := 0; i < maxSpecDepth+2; i++ {
		deep = &Spec{Kind: "wrap", Opts: []Opt{Nested("WithInner", deep)}}
	}
	if _, err := Encode(io.Discard, deep, payloadBytes(nil)); err == nil {
		t.Fatal("Encode accepted over-deep nesting")
	}
	many := &Spec{Kind: "k"}
	for i := 0; i <= maxOpts; i++ {
		many.Opts = append(many.Opts, Int("WithShards", int64(i)))
	}
	if _, err := Encode(io.Discard, many, payloadBytes(nil)); err == nil {
		t.Fatal("Encode accepted too many options")
	}
}

// FuzzReadFrom fuzzes the container decoder (the satellite's name for
// the entry point; Decode is the container's ReadFrom): seeded with
// valid containers, the fuzzer mutates freely and the decoder must
// never panic, loop, or allocate unboundedly — any outcome other than a
// clean (spec, payload) or a typed error is a bug. When a mutant still
// decodes, re-encoding its spec must round-trip (the format is
// canonical for what it accepts).
func FuzzReadFrom(f *testing.F) {
	f.Add(encodeValid(f, testSpec(), []byte("some payload")))
	f.Add(encodeValid(f, &Spec{Kind: "cola"}, nil))
	f.Add(encodeValid(f, &Spec{
		Kind: "durable",
		Opts: []Opt{String("WithWALPath", "a.wal"), Int("WithCheckpointEvery", 64)},
	}, bytes.Repeat([]byte{0xAB}, 1024)))
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, pr, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, core.ErrBadMagic) && !errors.Is(err, core.ErrBadVersion) && !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		payload, err := io.ReadAll(pr)
		if err != nil {
			t.Fatalf("reading verified payload: %v", err)
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, spec, payloadBytes(payload)); err != nil {
			t.Fatalf("re-encoding accepted spec: %v", err)
		}
		spec2, _, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("spec not canonical:\n first %+v\nsecond %+v", spec, spec2)
		}
	})
}
