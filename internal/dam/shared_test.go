package dam

import (
	"sync"
	"testing"
)

// TestSharedEpochFreezesResidency: misses inside a shared-read epoch
// are counted but change nothing — no residency, no recency, no
// eviction — so the exclusive-mode state after the epoch is exactly the
// state before it.
func TestSharedEpochFreezesResidency(t *testing.T) {
	s := NewStore(64, 64*2) // two resident blocks
	sp := s.Space("t")
	sp.Read(0, 1)  // block 0 resident
	sp.Read(64, 1) // block 1 resident
	if s.Transfers() != 2 {
		t.Fatalf("setup transfers = %d, want 2", s.Transfers())
	}

	s.BeginSharedReads()
	sp.Read(128, 1) // miss against the frozen set
	sp.Read(128, 1) // still a miss: nothing became resident
	sp.Read(0, 1)   // hit: block 0 is in the frozen set
	s.EndSharedReads()

	if got := s.Transfers(); got != 4 {
		t.Fatalf("transfers after epoch = %d, want 4 (2 setup + 2 frozen misses)", got)
	}
	reads, _ := s.Accesses()
	if reads != 5 {
		t.Fatalf("reads = %d, want 5", reads)
	}

	// Residency unchanged: blocks 0 and 1 still hit, block 2 still
	// misses (and now becomes resident, evicting LRU block 1 — the
	// epoch must not have touched recency, so 0 was most recent).
	base := s.Transfers()
	sp.Read(0, 1)
	sp.Read(64, 1)
	if s.Transfers() != base {
		t.Fatalf("resident blocks miss after epoch: transfers %d -> %d", base, s.Transfers())
	}
	sp.Read(128, 1)
	if s.Transfers() != base+1 {
		t.Fatalf("block 2 should still miss exactly once, transfers %d -> %d", base, s.Transfers())
	}
}

// TestSharedEpochNests: brackets nest (wrappers forward them), and the
// frozen path stays active until the outermost closes.
func TestSharedEpochNests(t *testing.T) {
	s := NewStore(64, 64)
	sp := s.Space("t")
	s.BeginSharedReads()
	//repro:allow bracketflow deliberate nested acquire: this test pins the depth-counting contract
	s.BeginSharedReads()
	s.EndSharedReads()
	sp.Read(0, 1) // depth still 1: frozen miss
	s.EndSharedReads()
	if s.transfers != 0 || s.sharedTransfers.Load() != 1 {
		t.Fatalf("counters = (%d exclusive, %d shared), want (0, 1)",
			s.transfers, s.sharedTransfers.Load())
	}
	sp.Read(0, 1) // depth 0: normal path, block becomes resident
	if s.transfers != 1 {
		t.Fatalf("exclusive transfers after epoch = %d, want 1", s.transfers)
	}
}

// TestSharedEpochEndUnderflowPanics pins the bracket discipline.
func TestSharedEpochEndUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on EndSharedReads underflow")
		}
	}()
	NewStore(64, 64).EndSharedReads()
}

// TestSharedEpochWritePanics: the epoch is read-only by contract; a
// structure charging a write inside one is a declared-shared structure
// mutating on its read path — a bug worth crashing on.
func TestSharedEpochWritePanics(t *testing.T) {
	s := NewStore(64, 64)
	sp := s.Space("t")
	s.BeginSharedReads()
	defer s.EndSharedReads()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Write during shared-read epoch")
		}
	}()
	sp.Write(0, 1)
}

// TestSharedEpochConcurrentReads hammers the frozen charge path from
// many goroutines (run with -race): counters must be exact because
// every miss is counted atomically against an immutable resident set.
func TestSharedEpochConcurrentReads(t *testing.T) {
	s := NewStore(64, 64*8)
	sp := s.Space("t")
	for b := int64(0); b < 8; b++ {
		sp.Read(b*64, 1) // blocks 0..7 resident
	}
	base := s.Transfers()

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp.BeginSharedReads()
			defer sp.EndSharedReads()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					sp.Read(int64(i%8)*64, 1) // resident: hit
				} else {
					sp.Read(64*100, 1) // never resident: miss
				}
			}
		}(w)
	}
	wg.Wait()
	wantMisses := uint64(workers * perWorker / 2)
	if got := s.Transfers() - base; got != wantMisses {
		t.Fatalf("frozen misses = %d, want %d", got, wantMisses)
	}
	reads, _ := s.Accesses()
	if want := uint64(8 + workers*perWorker); reads != want {
		t.Fatalf("reads = %d, want %d", reads, want)
	}
}

// TestSharedCountersSurviveReset: ResetCounters clears the shared
// counters too, so experiment phases measured after a concurrent phase
// start from zero like they always did.
func TestSharedCountersSurviveReset(t *testing.T) {
	s := NewStore(64, 64)
	sp := s.Space("t")
	s.BeginSharedReads()
	sp.Read(0, 1)
	s.EndSharedReads()
	if s.Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", s.Transfers())
	}
	s.ResetCounters()
	if s.Transfers() != 0 {
		t.Fatalf("transfers after reset = %d, want 0", s.Transfers())
	}
	reads, _ := s.Accesses()
	if reads != 0 {
		t.Fatalf("reads after reset = %d, want 0", reads)
	}
}
