package dam

import (
	"testing"
	"testing/quick"
)

func TestNewStoreRoundsCache(t *testing.T) {
	s := NewStore(4096, 4096*10+100)
	if got := s.CacheBlocks(); got != 10 {
		t.Fatalf("CacheBlocks = %d, want 10", got)
	}
	if got := s.BlockBytes(); got != 4096 {
		t.Fatalf("BlockBytes = %d, want 4096", got)
	}
}

func TestNewStoreMinimumOneBlock(t *testing.T) {
	s := NewStore(4096, 0)
	if got := s.CacheBlocks(); got != 1 {
		t.Fatalf("CacheBlocks = %d, want 1", got)
	}
}

func TestNewStorePanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive block size")
		}
	}()
	NewStore(0, 1024)
}

func TestColdMissThenHit(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Read(0, 1)
	if s.Transfers() != 1 {
		t.Fatalf("transfers after cold read = %d, want 1", s.Transfers())
	}
	sp.Read(0, 64) // same block, resident
	if s.Transfers() != 1 {
		t.Fatalf("transfers after warm read = %d, want 1", s.Transfers())
	}
	sp.Read(63, 2) // spans blocks 0 (hit) and 1 (miss)
	if s.Transfers() != 2 {
		t.Fatalf("transfers after spanning read = %d, want 2", s.Transfers())
	}
}

func TestRangeTouchesEveryBlock(t *testing.T) {
	s := NewStore(64, 64*100)
	sp := s.Space("t")
	sp.Read(0, 64*7) // exactly blocks 0..6
	if s.Transfers() != 7 {
		t.Fatalf("transfers = %d, want 7", s.Transfers())
	}
	sp.Read(1, 64*7) // blocks 0..7; 0..6 resident, 7 misses
	if s.Transfers() != 8 {
		t.Fatalf("transfers = %d, want 8", s.Transfers())
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewStore(64, 64*2) // two resident blocks
	sp := s.Space("t")
	sp.Read(0, 1)    // block 0; miss
	sp.Read(64, 1)   // block 1; miss
	sp.Read(0, 1)    // hit, 0 becomes MRU
	sp.Read(2*64, 1) // block 2; miss, evicts block 1 (LRU)
	sp.Read(0, 1)    // still resident
	if s.Transfers() != 3 {
		t.Fatalf("transfers = %d, want 3", s.Transfers())
	}
	sp.Read(64, 1) // block 1 was evicted; miss
	if s.Transfers() != 4 {
		t.Fatalf("transfers = %d, want 4", s.Transfers())
	}
}

func TestWritebackCounting(t *testing.T) {
	s := NewStore(64, 64) // single resident block
	sp := s.Space("t")
	sp.Write(0, 1) // miss, dirty
	sp.Read(64, 1) // evicts dirty block 0
	if s.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks())
	}
	sp.Read(0, 1) // evicts clean block 1
	if s.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1 (clean eviction)", s.Writebacks())
	}
}

func TestWriteThenReadIsHit(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Write(0, 64)
	sp.Read(0, 64)
	if s.Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", s.Transfers())
	}
}

func TestReadThenWriteMarksDirty(t *testing.T) {
	s := NewStore(64, 64)
	sp := s.Space("t")
	sp.Read(0, 1)  // clean
	sp.Write(0, 1) // same block now dirty
	sp.Read(64, 1) // evict
	if s.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks())
	}
}

func TestSpacesAreDisjoint(t *testing.T) {
	s := NewStore(64, 64*100)
	a := s.Space("a")
	b := s.Space("b")
	a.Read(0, 1)
	b.Read(0, 1)
	if s.Transfers() != 2 {
		t.Fatalf("transfers = %d, want 2 (spaces must not alias)", s.Transfers())
	}
}

func TestResetCountersKeepsResidency(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Read(0, 1)
	s.ResetCounters()
	if s.Transfers() != 0 {
		t.Fatalf("transfers after reset = %d, want 0", s.Transfers())
	}
	sp.Read(0, 1) // still resident
	if s.Transfers() != 0 {
		t.Fatalf("transfers = %d, want 0 (block should remain resident)", s.Transfers())
	}
}

func TestDropCacheEvictsAll(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Read(0, 1)
	s.DropCache()
	sp.Read(0, 1)
	if s.Transfers() != 2 {
		t.Fatalf("transfers = %d, want 2 after DropCache", s.Transfers())
	}
}

func TestNilSpaceIsNoop(t *testing.T) {
	var sp *Space
	sp.Read(0, 100)  // must not panic
	sp.Write(0, 100) // must not panic
	if sp.Name() != "<nil>" {
		t.Fatalf("Name = %q", sp.Name())
	}
	if sp.Store() != nil {
		t.Fatal("Store() on nil space should be nil")
	}
}

func TestZeroLengthAccessFree(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Read(0, 0)
	sp.Write(10, -5)
	if s.Transfers() != 0 {
		t.Fatalf("transfers = %d, want 0", s.Transfers())
	}
	r, w := s.Accesses()
	if r != 0 || w != 0 {
		t.Fatalf("accesses = (%d,%d), want (0,0)", r, w)
	}
}

func TestAccessCounters(t *testing.T) {
	s := NewStore(64, 64*4)
	sp := s.Space("t")
	sp.Read(0, 1)
	sp.Read(0, 1)
	sp.Write(0, 1)
	r, w := s.Accesses()
	if r != 2 || w != 1 {
		t.Fatalf("accesses = (%d,%d), want (2,1)", r, w)
	}
}

// TestScanCostLinear verifies the fundamental DAM property used throughout
// the paper: scanning L contiguous bytes costs Theta(L/B) transfers.
func TestScanCostLinear(t *testing.T) {
	const blockBytes = 256
	s := NewStore(blockBytes, blockBytes*8)
	sp := s.Space("t")
	const total = blockBytes * 1000
	// Scan in small pieces; cost must still be total/blockBytes.
	for off := int64(0); off < total; off += 32 {
		sp.Read(off, 32)
	}
	if got, want := s.Transfers(), uint64(total/blockBytes); got != want {
		t.Fatalf("scan transfers = %d, want %d", got, want)
	}
}

// TestRepeatedScanThrashes verifies that a working set larger than the
// cache always misses on re-scan (LRU worst case), the effect behind the
// paper's "structures no longer fit in main memory" crossover.
func TestRepeatedScanThrashes(t *testing.T) {
	const blockBytes = 64
	s := NewStore(blockBytes, blockBytes*4) // 4 resident blocks
	sp := s.Space("t")
	const blocks = 16
	for round := 0; round < 3; round++ {
		for i := int64(0); i < blocks; i++ {
			sp.Read(i*blockBytes, 1)
		}
	}
	if got, want := s.Transfers(), uint64(3*blocks); got != want {
		t.Fatalf("transfers = %d, want %d (every access must miss)", got, want)
	}
}

// TestLRUMatchesReferenceModel cross-checks the intrusive-list LRU against
// a simple slice-based reference implementation on random traces.
func TestLRUMatchesReferenceModel(t *testing.T) {
	f := func(trace []uint8, capSeed uint8) bool {
		capacity := int(capSeed%7) + 1
		s := NewStore(1, int64(capacity))
		sp := s.Space("t")

		var ref []uint64 // MRU at front
		var refMisses uint64
		for _, b := range trace {
			id := uint64(b % 32)
			sp.Read(int64(id), 1)
			idx := -1
			for i, v := range ref {
				if v == id {
					idx = i
					break
				}
			}
			if idx >= 0 {
				ref = append(ref[:idx], ref[idx+1:]...)
			} else {
				refMisses++
				if len(ref) >= capacity {
					ref = ref[:len(ref)-1]
				}
			}
			ref = append([]uint64{id}, ref...)
		}
		return s.Transfers() == refMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
