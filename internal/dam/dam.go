// Package dam simulates the Disk Access Machine (DAM) model of Aggarwal
// and Vitter: a two-level memory with an internal memory (cache) of M
// bytes organized into blocks of B bytes and an arbitrarily large external
// memory. The cost of an algorithm in the model is the number of block
// transfers between the two levels.
//
// The paper's experiments ran on real disks; this package is the
// substitution documented in DESIGN.md: structures are instrumented to
// report the (offset, length) ranges they touch, and the store maintains
// an LRU-resident set of blocks, counting misses as transfers. Because
// the cache-oblivious structures only hold opaque Space handles and never
// observe B or M, the simulation preserves cache obliviousness: B and M
// are properties of the memory, not of the algorithm.
package dam

import "sync/atomic"

// Store models the two-level memory. It is not safe for general
// concurrent use — experiments are single-threaded, matching the paper
// — with one carefully scoped exception: while a shared-read epoch is
// open (BeginSharedReads/EndSharedReads), any number of goroutines may
// issue Read charges and query the counters concurrently. During the
// epoch the LRU is frozen: recency is not updated, nothing becomes
// resident or is evicted, and misses are counted with atomics against
// the frozen resident set. Write charges and all structural mutation
// remain exclusive-only (a Write during an open epoch panics).
//
// Outside any epoch the code path is exactly the single-threaded one,
// so single-threaded transfer counts are bit-identical to a store
// without the epoch machinery.
type Store struct {
	blockBytes int64
	capacity   int // resident blocks (M/B)

	// LRU over resident block IDs, most recent at head.
	table map[uint64]*lruNode
	head  *lruNode
	tail  *lruNode
	free  *lruNode // recycled nodes

	transfers  uint64 // block fetches from external memory (misses)
	writebacks uint64 // dirty evictions
	reads      uint64 // Read calls
	writes     uint64 // Write calls

	// Shared-read epoch state: sharedDepth counts open brackets, and
	// while it is positive misses and read charges accumulate in the
	// atomic counters instead of touching the plain ones (or the LRU).
	sharedDepth     atomic.Int64
	sharedTransfers atomic.Uint64
	sharedReads     atomic.Uint64

	nextBase uint64 // next Space base address
}

type lruNode struct {
	id         uint64
	dirty      bool
	prev, next *lruNode
}

// DefaultBlockBytes matches the paper's B-tree block size of 4 KiB.
const DefaultBlockBytes = 4096

// NewStore creates a simulated memory with the given block size and total
// cache size, both in bytes. cacheBytes is rounded down to a whole number
// of blocks, with a minimum of one resident block.
func NewStore(blockBytes, cacheBytes int64) *Store {
	if blockBytes <= 0 {
		panic("dam: block size must be positive")
	}
	capacity := int(cacheBytes / blockBytes)
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		blockBytes: blockBytes,
		capacity:   capacity,
		table:      make(map[uint64]*lruNode, capacity+1),
	}
}

// BlockBytes reports the block size B in bytes.
func (s *Store) BlockBytes() int64 { return s.blockBytes }

// CacheBlocks reports the number of resident blocks (M/B).
func (s *Store) CacheBlocks() int { return s.capacity }

// Transfers reports the number of block transfers (cache misses) so
// far: exclusive-mode misses plus misses counted during shared-read
// epochs. Safe to call while an epoch is open.
func (s *Store) Transfers() uint64 { return s.transfers + s.sharedTransfers.Load() }

// Writebacks reports the number of dirty blocks evicted so far.
func (s *Store) Writebacks() uint64 { return s.writebacks }

// Accesses reports the number of Read and Write range accesses so far,
// shared-epoch reads included.
func (s *Store) Accesses() (reads, writes uint64) {
	return s.reads + s.sharedReads.Load(), s.writes
}

// ResetCounters zeroes the transfer and access counters without
// disturbing cache residency. Use between experiment phases (e.g. between
// the load phase and the query phase of Figure 4). It must not race an
// open shared-read epoch.
func (s *Store) ResetCounters() {
	s.transfers = 0
	s.writebacks = 0
	s.reads = 0
	s.writes = 0
	s.sharedTransfers.Store(0)
	s.sharedReads.Store(0)
}

// BeginSharedReads opens a shared-read epoch (brackets nest). While at
// least one bracket is open the resident set is frozen: concurrent
// goroutines may charge reads, each miss counting one transfer against
// the frozen set without updating recency or residency. The caller is
// responsible for excluding writers for the duration (the concurrency
// wrappers hold an RWMutex read lock across the bracket).
func (s *Store) BeginSharedReads() { s.sharedDepth.Add(1) }

// EndSharedReads closes one bracket; it panics on underflow.
func (s *Store) EndSharedReads() {
	if s.sharedDepth.Add(-1) < 0 {
		panic("dam: EndSharedReads without a matching BeginSharedReads")
	}
}

// DropCache evicts every resident block, simulating the paper's
// "remounted the RAID array's file system before every insertion test to
// clear the file cache".
func (s *Store) DropCache() {
	clear(s.table)
	s.head = nil
	s.tail = nil
	s.free = nil
}

// Space carves out a fresh address space of the given name (name is for
// debugging only). Spaces are unbounded; they exist so that independent
// structures sharing one Store never alias blocks.
func (s *Store) Space(name string) *Space {
	// 2^44 bytes (16 TiB) per space keeps spaces disjoint while leaving
	// room for 2^20 spaces in the 64-bit block-ID namespace.
	const spaceBytes = 1 << 44
	base := s.nextBase
	s.nextBase += spaceBytes
	return &Space{store: s, base: base, name: name}
}

// touch makes the block with the given ID resident, counting a transfer
// on miss, and marks it dirty if write is set.
func (s *Store) touch(id uint64, write bool) {
	if n, ok := s.table[id]; ok {
		if write {
			n.dirty = true
		}
		s.moveToFront(n)
		return
	}
	s.transfers++
	var n *lruNode
	if len(s.table) >= s.capacity {
		// Evict the least recently used block and recycle its node.
		n = s.tail
		s.unlink(n)
		delete(s.table, n.id)
		if n.dirty {
			s.writebacks++
		}
	} else if s.free != nil {
		n = s.free
		s.free = n.next
	} else {
		n = &lruNode{}
	}
	n.id = id
	n.dirty = write
	n.prev = nil
	n.next = nil
	s.table[id] = n
	s.pushFront(n)
}

func (s *Store) pushFront(n *lruNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *Store) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev = nil
	n.next = nil
}

func (s *Store) moveToFront(n *lruNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// access charges a byte range in external memory.
func (s *Store) access(base uint64, off, n int64, write bool) {
	if n <= 0 {
		return
	}
	if s.sharedDepth.Load() > 0 {
		s.sharedAccess(base, off, n, write)
		return
	}
	if write {
		s.writes++
	} else {
		s.reads++
	}
	addr := base + uint64(off)
	first := addr / uint64(s.blockBytes)
	last := (addr + uint64(n) - 1) / uint64(s.blockBytes)
	for id := first; id <= last; id++ {
		s.touch(id, write)
	}
}

// sharedAccess is the frozen-set charge path of an open shared-read
// epoch: the LRU table is only read (safe for concurrent map reads —
// nothing mutates it while the epoch is open), every non-resident block
// counts one transfer, and the counters are atomic. Repeated shared
// reads of the same non-resident block each count a miss — the price
// of freezing recency, documented in DESIGN.md's shared-read appendix.
func (s *Store) sharedAccess(base uint64, off, n int64, write bool) {
	if write {
		panic("dam: write charged during an open shared-read epoch")
	}
	s.sharedReads.Add(1)
	addr := base + uint64(off)
	first := addr / uint64(s.blockBytes)
	last := (addr + uint64(n) - 1) / uint64(s.blockBytes)
	for id := first; id <= last; id++ {
		if _, resident := s.table[id]; !resident {
			s.sharedTransfers.Add(1)
		}
	}
}

// Space is a named, disjoint region of the simulated external memory.
// A nil *Space is valid and charges nothing, so structures can run with
// cost accounting disabled (pure wall-clock benchmarks) at zero overhead
// beyond a nil check.
type Space struct {
	store *Store
	base  uint64
	name  string
}

// Read charges a read of n bytes at byte offset off within the space.
func (sp *Space) Read(off, n int64) {
	if sp == nil {
		return
	}
	sp.store.access(sp.base, off, n, false)
}

// Write charges a write of n bytes at byte offset off within the space.
func (sp *Space) Write(off, n int64) {
	if sp == nil {
		return
	}
	sp.store.access(sp.base, off, n, true)
}

// BeginSharedReads forwards to the owning store's shared-read epoch;
// a nil space is a no-op, mirroring Read/Write, so structures without
// accounting implement core.SharedReader at zero cost.
func (sp *Space) BeginSharedReads() {
	if sp == nil {
		return
	}
	sp.store.BeginSharedReads()
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (sp *Space) EndSharedReads() {
	if sp == nil {
		return
	}
	sp.store.EndSharedReads()
}

// Name reports the space's debug name.
func (sp *Space) Name() string {
	if sp == nil {
		return "<nil>"
	}
	return sp.name
}

// Store returns the owning store, or nil for a nil space.
func (sp *Space) Store() *Store {
	if sp == nil {
		return nil
	}
	return sp.store
}
