package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// mapHandler replays into a plain map, recording batch boundaries.
type mapHandler struct {
	m       map[uint64]uint64
	batches int
}

func newMapHandler() *mapHandler { return &mapHandler{m: make(map[uint64]uint64)} }

func (h *mapHandler) ApplyInsert(elems []core.Element) {
	for _, e := range elems {
		h.m[e.Key] = e.Value
	}
	h.batches++
}

func (h *mapHandler) ApplyDelete(keys []uint64) {
	for _, k := range keys {
		delete(h.m, k)
	}
	h.batches++
}

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	w, replayed, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh log replayed %d records", replayed)
	}
	batch := make([]core.Element, 100)
	for i := range batch {
		batch[i] = core.Element{Key: uint64(i), Value: uint64(i * 3)}
	}
	if err := w.AppendInsert(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelete([]uint64{5, 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert([]core.Element{{Key: 7, Value: 999}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(nil); err != nil { // no-op, no record
		t.Fatal(err)
	}
	if w.Records() != 3 {
		t.Fatalf("Records = %d, want 3", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	h := newMapHandler()
	w2, replayed, err := Open(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, w2)
	if replayed != 3 || h.batches != 3 {
		t.Fatalf("replayed %d records over %d batches, want 3/3", replayed, h.batches)
	}
	if len(h.m) != 99 {
		t.Fatalf("replayed map has %d keys, want 99", len(h.m))
	}
	if _, ok := h.m[5]; ok {
		t.Fatal("deleted key 5 survived replay")
	}
	if h.m[7] != 999 {
		t.Fatalf("key 7 = %d, want 999 (delete then re-insert, in order)", h.m[7])
	}
}

// TestTornTailTruncated simulates a crash mid-append: replay must stop
// at the last intact record, truncate the damage, and keep appending
// from there.
func TestTornTailTruncated(t *testing.T) {
	path := walPath(t)
	w, _, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert([]core.Element{{Key: 1, Value: 10}})
	w.AppendInsert([]core.Element{{Key: 2, Value: 20}})
	mustClose(t, w)

	fi, _ := os.Stat(path)
	intact := fi.Size()
	// Crash artifacts to splice after the intact records.
	tails := map[string][]byte{
		"torn header":    {0x29, 0x00},
		"torn body":      {0x29, 0x00, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0x01, 0x02},
		"bad checksum":   mkRecord(t, 3, 30, true),
		"bad op":         mkBadOpRecord(),
		"oversized body": mkOversizedHeader(),
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			damaged := filepath.Join(t.TempDir(), "damaged.wal")
			if err := os.WriteFile(damaged, append(append([]byte(nil), data...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			h := newMapHandler()
			w, replayed, err := Open(damaged, h)
			if err != nil {
				t.Fatal(err)
			}
			if replayed != 2 || h.m[1] != 10 || h.m[2] != 20 {
				t.Fatalf("replayed %d records, map %v", replayed, h.m)
			}
			if fi, _ := os.Stat(damaged); fi.Size() != intact {
				t.Fatalf("damage not truncated: size %d, want %d", fi.Size(), intact)
			}
			// The log keeps working on the clean boundary.
			if err := w.AppendInsert([]core.Element{{Key: 3, Value: 30}}); err != nil {
				t.Fatal(err)
			}
			mustClose(t, w)
			h2 := newMapHandler()
			if _, replayed, err = Open(damaged, h2); err != nil || replayed != 3 {
				t.Fatalf("after repair+append: replayed %d (%v)", replayed, err)
			}
		})
	}
}

// mkRecord builds one standalone insert record, optionally with a
// corrupted checksum.
func mkRecord(t *testing.T, key, val uint64, breakCRC bool) []byte {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "one.wal")
	w, _, err := Open(p, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert([]core.Element{{Key: key, Value: val}})
	mustClose(t, w)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if breakCRC {
		b[4] ^= 0xFF
	}
	return b
}

func mkBadOpRecord() []byte {
	// length 5, valid CRC over body {op=9, count=0}.
	body := []byte{9, 0, 0, 0, 0}
	rec := []byte{5, 0, 0, 0, 0, 0, 0, 0}
	rec = append(rec, body...)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	return rec
}

func mkOversizedHeader() []byte {
	return []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
}

func TestResetEmptiesLog(t *testing.T) {
	path := walPath(t)
	w, _, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert([]core.Element{{Key: 1, Value: 1}})
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("Records after Reset = %d", w.Records())
	}
	w.AppendInsert([]core.Element{{Key: 2, Value: 2}})
	mustClose(t, w)
	h := newMapHandler()
	_, replayed, err := Open(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 || len(h.m) != 1 || h.m[2] != 2 {
		t.Fatalf("after reset: replayed %d, map %v", replayed, h.m)
	}
}

// TestFailedAppendPoisonsLog: when an append fails AND the torn bytes
// cannot be cut back to the last record boundary, the log must refuse
// every further append — otherwise a caller that recovers the panic
// upstream would keep acknowledging records written past the tear,
// which replay can never reach.
func TestFailedAppendPoisonsLog(t *testing.T) {
	path := walPath(t)
	w, _, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert([]core.Element{{Key: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	//repro:allow durerr deliberate sabotage: killing the fd is the fault being injected
	w.f.Close() // every later write AND the truncate repair now fail
	if err := w.AppendInsert([]core.Element{{Key: 3, Value: 4}}); err == nil {
		t.Fatal("append on a dead file reported success")
	}
	if w.broken == nil {
		t.Fatal("failed append with failed repair did not poison the log")
	}
	if err := w.AppendInsert([]core.Element{{Key: 5, Value: 6}}); err == nil || !strings.Contains(err.Error(), "torn bytes") {
		t.Fatalf("append on a poisoned log: %v", err)
	}
	// A restart sees exactly the acknowledged prefix.
	h := newMapHandler()
	w2, replayed, err := Open(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, w2)
	if replayed != 1 || h.m[1] != 2 {
		t.Fatalf("after poisoned crash: replayed %d, map %v", replayed, h.m)
	}
}

// TestResetClearsPoison: a checkpoint (Reset) truncates the file to
// empty, torn bytes included, so the poison lifts and appends resume.
func TestResetClearsPoison(t *testing.T) {
	path := walPath(t)
	w, _, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	w.broken = errors.New("simulated unrepairable tear")
	if err := w.AppendInsert([]core.Element{{Key: 1, Value: 1}}); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert([]core.Element{{Key: 2, Value: 2}}); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	mustClose(t, w)
	h := newMapHandler()
	w2, replayed, err := Open(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, w2)
	if replayed != 1 || h.m[2] != 2 {
		t.Fatalf("after reset: replayed %d, map %v", replayed, h.m)
	}
}

func TestOversizedBatchPanics(t *testing.T) {
	path := walPath(t)
	w, _, err := Open(path, newMapHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, w)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for a batch past maxBodyBytes")
		}
	}()
	w.AppendInsert(make([]core.Element, maxBodyBytes/16+1))
}

func TestRecordLayoutStable(t *testing.T) {
	// Pin the wire format: one insert record of one element.
	rec := mkRecord(t, 0x1122334455667788, 0x99AABBCCDDEEFF00, false)
	want := []byte{
		21, 0, 0, 0, // body length: 1 + 4 + 16
	}
	if !bytes.Equal(rec[0:4], want) {
		t.Fatalf("length field = %v", rec[0:4])
	}
	if rec[8] != opInsert {
		t.Fatalf("op byte = %d", rec[8])
	}
	if got := rec[9]; got != 1 {
		t.Fatalf("count = %d", got)
	}
	if rec[13] != 0x88 || rec[20] != 0x11 {
		t.Fatal("key not little-endian at offset 13")
	}
}
