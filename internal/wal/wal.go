// Package wal implements the append-only write-ahead log behind the
// registry's "durable" wrapper kind. The log is a flat file of
// self-checking records, little-endian:
//
//	record:  body length u32 | body CRC32 u32 | body
//	body:    op u8 (1 = insert batch, 2 = delete batch) | count u32 |
//	         count × element (key u64 | value u64)   for inserts
//	         count × key u64                         for deletes
//
// Appends are acknowledged when the record has reached the operating
// system in a single write call: a crashed (or SIGKILLed) process loses
// nothing it acknowledged, a lost power event loses what the OS had not
// flushed — call Sync for the stronger guarantee.
//
// Open replays every intact record in append order and truncates the
// tail at the first damaged one (length or checksum mismatch, short
// read): a record torn by a crash mid-append disappears, which is
// exactly the un-acknowledged suffix. Replaying a log whose effects are
// already (partially) in a checkpoint is safe because records apply
// idempotently in order — the final operation on each key wins either
// way.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
)

// Record operation codes.
const (
	opInsert byte = 1
	opDelete byte = 2
)

// maxBodyBytes bounds one record body (about 4M elements per batch);
// replay treats a larger claimed length as tail damage rather than
// attempting the allocation.
const maxBodyBytes = 1 << 26

// MaxBatchElems is the largest insert batch one record can carry;
// callers with bigger batches split them (the durable wrapper does so
// transparently).
const MaxBatchElems = (maxBodyBytes - 5) / 16

// Handler receives the replayed operations of Open, in append order.
type Handler interface {
	// ApplyInsert applies one logged insert batch. The slice is reused
	// across calls; implementations must not retain it.
	ApplyInsert(elems []core.Element)
	// ApplyDelete applies one logged delete batch. The slice is reused
	// across calls; implementations must not retain it.
	ApplyDelete(keys []uint64)
}

// WAL is an open write-ahead log positioned for appending. Methods are
// not safe for concurrent use; the durable wrapper serializes access.
type WAL struct {
	f       *os.File
	path    string
	buf     []byte // record assembly buffer, reused across appends
	records uint64 // intact records currently in the log
	off     int64  // byte offset just past the last intact record
	broken  error  // the append failure that left torn bytes we could not cut back
}

// Open opens (creating if absent) the log at path, replays every intact
// record through h in append order, truncates any damaged tail, and
// returns the log positioned for appending together with the number of
// records replayed.
func Open(path string, h Handler) (*WAL, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	w := &WAL{f: f, path: path}
	replayed, goodEnd, err := w.replay(h)
	if err != nil {
		f.Close() //repro:allow durerr already failing; a Close error would mask the replay error
		return nil, 0, err
	}
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > goodEnd {
		// Torn tail: drop the bytes past the last intact record so the
		// next append starts on a record boundary.
		if err := f.Truncate(goodEnd); err != nil {
			f.Close() //repro:allow durerr already failing; a Close error would mask the truncate error
			return nil, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close() //repro:allow durerr already failing; a Close error would mask the seek error
		return nil, 0, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	w.records = uint64(replayed)
	w.off = goodEnd
	return w, replayed, nil
}

// replay streams records from the start of the file through h and
// returns how many intact records it applied and the byte offset just
// past the last one. Damage (truncation, checksum or size mismatch,
// unknown op) ends replay without error — it is the expected artifact
// of a crash mid-append.
func (w *WAL) replay(h Handler) (int, int64, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: seeking %s: %w", w.path, err)
	}
	br := bufio.NewReaderSize(w.f, 1<<16)
	var (
		head     [8]byte
		body     []byte
		elems    []core.Element
		keys     []uint64
		replayed int
		goodEnd  int64
	)
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return replayed, goodEnd, nil // clean EOF or torn header
		}
		bodyLen := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if bodyLen < 5 || bodyLen > maxBodyBytes {
			return replayed, goodEnd, nil
		}
		if cap(body) < int(bodyLen) {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := io.ReadFull(br, body); err != nil {
			return replayed, goodEnd, nil
		}
		if crc32.ChecksumIEEE(body) != sum {
			return replayed, goodEnd, nil
		}
		op := body[0]
		count := binary.LittleEndian.Uint32(body[1:5])
		payload := body[5:]
		switch op {
		case opInsert:
			if uint64(len(payload)) != uint64(count)*16 {
				return replayed, goodEnd, nil
			}
			if cap(elems) < int(count) {
				elems = make([]core.Element, count)
			}
			elems = elems[:count]
			for i := range elems {
				elems[i].Key = binary.LittleEndian.Uint64(payload[i*16:])
				elems[i].Value = binary.LittleEndian.Uint64(payload[i*16+8:])
			}
			h.ApplyInsert(elems)
		case opDelete:
			if uint64(len(payload)) != uint64(count)*8 {
				return replayed, goodEnd, nil
			}
			if cap(keys) < int(count) {
				keys = make([]uint64, count)
			}
			keys = keys[:count]
			for i := range keys {
				keys[i] = binary.LittleEndian.Uint64(payload[i*8:])
			}
			h.ApplyDelete(keys)
		default:
			return replayed, goodEnd, nil
		}
		replayed++
		goodEnd += int64(8 + len(body))
	}
}

// AppendInsert logs one insert batch. The record reaches the file in a
// single write call, so a successful return means a process crash
// cannot lose it. Empty batches append nothing.
func (w *WAL) AppendInsert(elems []core.Element) error {
	if len(elems) == 0 {
		return nil
	}
	bodyLen := 5 + 16*len(elems)
	b := w.record(opInsert, uint32(len(elems)), bodyLen)
	off := 13 // 8-byte record header + op + count
	for _, e := range elems {
		binary.LittleEndian.PutUint64(b[off:], e.Key)
		binary.LittleEndian.PutUint64(b[off+8:], e.Value)
		off += 16
	}
	return w.commit(b)
}

// AppendDelete logs one delete batch; see AppendInsert for the
// acknowledgement contract.
func (w *WAL) AppendDelete(keys []uint64) error {
	if len(keys) == 0 {
		return nil
	}
	bodyLen := 5 + 8*len(keys)
	b := w.record(opDelete, uint32(len(keys)), bodyLen)
	off := 13
	for _, k := range keys {
		binary.LittleEndian.PutUint64(b[off:], k)
		off += 8
	}
	return w.commit(b)
}

// record lays out the header and body prefix of one record in the
// reusable buffer and returns the full record slice; commit fills in
// the checksum once the payload is written.
func (w *WAL) record(op byte, count uint32, bodyLen int) []byte {
	if bodyLen > maxBodyBytes {
		panic(fmt.Sprintf("wal: record body of %d bytes exceeds the %d limit; split the batch", bodyLen, maxBodyBytes))
	}
	total := 8 + bodyLen
	if cap(w.buf) < total {
		w.buf = make([]byte, total)
	}
	b := w.buf[:total]
	binary.LittleEndian.PutUint32(b[0:4], uint32(bodyLen))
	b[8] = op
	binary.LittleEndian.PutUint32(b[9:13], count)
	return b
}

// commit checksums and writes the assembled record. A failed write may
// leave a torn record in the file; commit cuts the file back to the
// last intact boundary so later appends stay reachable by replay. If
// that repair itself fails, the log is poisoned: every further append
// errors immediately, because a record written after torn bytes lies
// beyond where replay stops — it would be acknowledged yet silently
// unrecoverable. Reset (a successful checkpoint) clears the poison,
// since truncation to empty removes the torn bytes too.
func (w *WAL) commit(b []byte) error {
	if w.broken != nil {
		return fmt.Errorf("wal: %s holds torn bytes from an earlier append failure (%v); checkpoint to reset the log", w.path, w.broken)
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[8:]))
	if _, err := w.f.Write(b); err != nil {
		if terr := w.truncateTo(w.off); terr != nil {
			w.broken = err
		}
		return fmt.Errorf("wal: appending to %s: %w", w.path, err)
	}
	w.off += int64(len(b))
	w.records++
	return nil
}

// truncateTo cuts the file to off and repositions for appending.
func (w *WAL) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	_, err := w.f.Seek(off, io.SeekStart)
	return err
}

// Sync flushes the log to stable storage (fsync).
func (w *WAL) Sync() error { return w.f.Sync() }

// Reset empties the log — the checkpoint step after the state it
// records has been captured elsewhere — and syncs the truncation.
// Truncating to zero also removes any torn bytes a failed append left
// behind, so a poisoned log is clean again afterwards.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", w.path, err)
	}
	w.records = 0
	w.off = 0
	w.broken = nil
	return nil
}

// Records reports how many intact records the log currently holds
// (replayed at Open plus appended since, minus any Reset).
func (w *WAL) Records() uint64 { return w.records }

// Path reports the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the log file. It does not sync; call Sync first if the
// power-loss guarantee matters.
func (w *WAL) Close() error { return w.f.Close() }
