package shuttle

import (
	"io"

	"repro/internal/core"
)

// snapshotMagic identifies the shuttle tree's logical snapshot payload
// (see internal/core/snapshot.go): live elements — including ones still
// sitting in shuttle buffers — in ascending key order, re-inserted on
// restore. The SWBST skeleton, van Emde Boas layout, and buffer
// occupancy are rebuilt by the inserts rather than persisted; the same
// codec serves the CO-B-tree configuration (buffering disabled).
const snapshotMagic = "SHUT"

var _ core.Snapshotter = (*Tree)(nil)

// WriteTo implements io.WriterTo (logical codec).
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, snapshotMagic, t)
}

// ReadFrom implements io.ReaderFrom; t must be empty.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, snapshotMagic, t)
}
