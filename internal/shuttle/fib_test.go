package shuttle

import "testing"

func TestFibValues(t *testing.T) {
	want := []int{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for k, w := range want {
		if got := Fib(k); got != w {
			t.Errorf("Fib(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestLargestFibBelow(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 3, 5: 3, 6: 5, 8: 5, 9: 8, 13: 8, 14: 13, 100: 89}
	for h, w := range cases {
		if got := LargestFibBelow(h); got != w {
			t.Errorf("LargestFibBelow(%d) = %d, want %d", h, got, w)
		}
	}
}

func TestLargestFibBelowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	LargestFibBelow(1)
}

func TestFibFactor(t *testing.T) {
	// x(h) = h for Fibonacci h; otherwise x(h) = x(h - largest Fib < h).
	cases := map[int]int{
		1: 1, 2: 2, 3: 3, 5: 5, 8: 8, 13: 13, // Fibonacci numbers map to themselves
		4:  1, // 4-3 = 1
		6:  1, // 6-5 = 1
		7:  2, // 7-5 = 2
		9:  1, // 9-8 = 1
		10: 2, // 10-8 = 2
		11: 3, // 11-8 = 3
		12: 1, // 12-8 = 4 -> 4-3 = 1
	}
	for h, w := range cases {
		if got := FibFactor(h); got != w {
			t.Errorf("FibFactor(%d) = %d, want %d", h, got, w)
		}
	}
}

func TestPaperH(t *testing.T) {
	// H(j) = j - ceil(2 log_phi j); spot values: phi ~ 1.618.
	// j=12: log_phi 12 = 5.164 -> ceil(10.33) = 11 -> H = 1.
	if got := PaperH(12); got != 1 {
		t.Errorf("PaperH(12) = %d, want 1", got)
	}
	// H must be nondecreasing and diverge (j - o(j)).
	prev := PaperH(3)
	for j := 4; j < 40; j++ {
		h := PaperH(j)
		if h < prev {
			t.Errorf("PaperH not monotone at j=%d: %d < %d", j, h, prev)
		}
		prev = h
	}
	if PaperH(40) < 20 {
		t.Errorf("PaperH(40) = %d; should grow roughly like j", PaperH(40))
	}
}

func TestScaledH(t *testing.T) {
	if ScaledH(2) != 1 || ScaledH(3) != 1 || ScaledH(4) != 2 || ScaledH(10) != 8 {
		t.Errorf("ScaledH values wrong: %d %d %d %d",
			ScaledH(2), ScaledH(3), ScaledH(4), ScaledH(10))
	}
}

func TestBufferHeightsShape(t *testing.T) {
	// Child height 8 = F_6: factors k=6, scaled H gives heights
	// F_{H(3..6)} = F_1,F_2,F_3,F_4 = 1,1,2,3 -> dedup {1,2,3}.
	got := BufferHeights(8, ScaledH)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("BufferHeights(8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BufferHeights(8) = %v, want %v", got, want)
		}
	}
	// Non-Fibonacci height 4: x(4) = 1 = F_2 -> k = 2 -> no buffers.
	if got := BufferHeights(4, ScaledH); len(got) != 0 {
		t.Fatalf("BufferHeights(4) = %v, want empty", got)
	}
	// Heights must ascend for any h.
	for h := 1; h < 30; h++ {
		bh := BufferHeights(h, ScaledH)
		for i := 1; i < len(bh); i++ {
			if bh[i] <= bh[i-1] {
				t.Fatalf("BufferHeights(%d) = %v not ascending", h, bh)
			}
		}
	}
}

// TestLemma15PathBufferCount verifies the counting lemma: along a
// root-to-leaf path of a height-F_k tree, at most F_{k-j+2} nodes have
// height-F_{H(j)} (or larger) buffers — equivalently, at most F_{k-j+2}
// nodes on the path have Fibonacci factor >= F_j. The proof counts
// factors, so we verify the factor form directly on synthetic paths.
func TestLemma15PathBufferCount(t *testing.T) {
	for k := 3; k <= 12; k++ {
		height := Fib(k)
		// A root-to-leaf path visits nodes at heights height, height-1,
		// ..., 1; node at height h+1 has buffers keyed by x(h).
		for j := 2; j <= k; j++ {
			count := 0
			for h := 1; h < height; h++ {
				if FibFactor(h) >= Fib(j) {
					count++
				}
			}
			bound := Fib(k - j + 2)
			if count > bound {
				t.Errorf("k=%d j=%d: %d nodes with factor >= F_j, bound F_{k-j+2} = %d",
					k, j, count, bound)
			}
		}
	}
}

// TestLemma3RecursiveSubtreeLeaves verifies Lemma 3's characterization:
// splitting a height-F_{k+1} tree at F_k leaves boundary nodes exactly
// where Fibonacci factors say buffers should hang. Concretely: on the
// recursive split sequence of a height-F_k tree, a node at height h+1 is
// a boundary leaf of a height-F_{j-1} recursive unit iff x(h) >= F_j.
func TestLemma3RecursiveSubtreeLeaves(t *testing.T) {
	// Simulate the recursion on heights alone: recurse(h levels spanning
	// absolute heights [lo, lo+h-1]); boundary rows are the lowest row
	// of each recursion unit.
	boundaryRows := make(map[int][]int) // absolute height -> unit heights where it is a leaf row
	var recurse func(lo, h int)
	recurse = func(lo, h int) {
		if h <= 1 {
			boundaryRows[lo] = append(boundaryRows[lo], h)
			return
		}
		split := LargestFibBelow(h)
		top := h - split
		recurse(lo+split, top)
		boundaryRows[lo+split] = append(boundaryRows[lo+split], top)
		recurse(lo, split)
		boundaryRows[lo] = append(boundaryRows[lo], split)
	}
	k := 9
	recurse(1, Fib(k)) // tree of height F_9 = 34, leaves at height 1
	// A node at absolute height hh >= 2 with child height h = hh-1:
	// larger Fibonacci factor => leaf of larger units.
	for hh := 2; hh <= Fib(k); hh++ {
		units := boundaryRows[hh]
		maxUnit := 0
		for _, u := range units {
			if u > maxUnit {
				maxUnit = u
			}
		}
		// Lemma 3: a node at height h+1 is the leaf of a height-F_{j-1}
		// recursive subtree iff x(h) >= F_j. With x(h) = F_j exactly,
		// the largest unit bounded by this row is therefore F_{j-1}.
		factor := FibFactor(hh - 1)
		want := Fib(fibIndexOf(factor) - 1)
		if maxUnit != want {
			t.Errorf("height %d (factor %d): largest boundary unit %d, want %d",
				hh, factor, maxUnit, want)
		}
	}
}
