package shuttle

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/swbst"
	"repro/internal/workload"
)

func newTestTree() *Tree {
	return New(Options{Fanout: 4})
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for tiny fanout")
		}
	}()
	New(Options{Fanout: 2})
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTestTree()
	keys := []uint64{9, 3, 7, 1, 5, 0, 8, 2, 6, 4}
	for _, k := range keys {
		tr.Insert(k, k*11)
		tr.CheckInvariants()
	}
	for _, k := range keys {
		if v, ok := tr.Search(k); !ok || v != k*11 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := tr.Search(99); ok {
		t.Fatal("found a missing key")
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertSearchLargeRandom(t *testing.T) {
	tr := newTestTree()
	const n = 1 << 13
	seq := workload.NewRandomUnique(3)
	keys := workload.Take(seq, n)
	for _, k := range keys {
		tr.Insert(k, k^5)
	}
	tr.CheckInvariants()
	for _, k := range keys {
		if v, ok := tr.Search(k); !ok || v != k^5 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestBuffersActuallyUsed(t *testing.T) {
	// Once the tree is tall enough, inserted elements must pause in
	// buffers rather than going straight to leaves.
	tr := newTestTree()
	seq := workload.NewRandomUnique(5)
	sawBuffered := false
	for i := 0; i < 1<<13; i++ {
		k := seq.Next()
		tr.Insert(k, k)
		if tr.BufferedCount() > 0 {
			sawBuffered = true
		}
	}
	if !sawBuffered {
		t.Fatal("no element was ever buffered; the shuttle mechanism is dead code")
	}
}

func TestSortedOrders(t *testing.T) {
	const n = 1 << 12
	for name, seq := range map[string]workload.Sequence{
		"asc":  workload.NewAscending(),
		"desc": workload.NewDescending(n),
	} {
		tr := newTestTree()
		for i := 0; i < n; i++ {
			k := seq.Next()
			tr.Insert(k, k+7)
		}
		tr.CheckInvariants()
		for k := uint64(0); k < n; k++ {
			if v, ok := tr.Search(k); !ok || v != k+7 {
				t.Fatalf("%s: Search(%d) = (%d,%v)", name, k, v, ok)
			}
		}
	}
}

func TestUpdateSemantics(t *testing.T) {
	tr := newTestTree()
	tr.Insert(42, 1)
	for i := uint64(100); i < 3000; i++ {
		tr.Insert(i, i)
	}
	tr.Insert(42, 2)
	if v, ok := tr.Search(42); !ok || v != 2 {
		t.Fatalf("Search(42) = (%d,%v), want (2,true)", v, ok)
	}
	for i := uint64(5000); i < 8000; i++ {
		tr.Insert(i, i)
	}
	if v, ok := tr.Search(42); !ok || v != 2 {
		t.Fatalf("after churn: Search(42) = (%d,%v), want (2,true)", v, ok)
	}
	tr.FlushAll()
	if v, ok := tr.Search(42); !ok || v != 2 {
		t.Fatalf("after flush: Search(42) = (%d,%v), want (2,true)", v, ok)
	}
	if tr.Len() != 1+2900+3000 {
		t.Fatalf("Len = %d, want %d", tr.Len(), 1+2900+3000)
	}
}

func TestRange(t *testing.T) {
	tr := newTestTree()
	for i := uint64(0); i < 4000; i += 2 {
		tr.Insert(i, i+1)
	}
	var got []core.Element
	tr.Range(100, 120, func(e core.Element) bool { got = append(got, e); return true })
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("Range size = %d, want %d (%v)", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Key != want[i] || e.Value != want[i]+1 {
			t.Fatalf("Range[%d] = %v", i, e)
		}
	}
	count := 0
	tr.Range(0, 4000, func(core.Element) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRangeSeesBufferedItems(t *testing.T) {
	tr := newTestTree()
	for i := uint64(0); i < 3000; i++ {
		tr.Insert(i*2, 1)
	}
	tr.Insert(999, 7) // odd key, freshly buffered
	found := false
	tr.Range(998, 1000, func(e core.Element) bool {
		if e.Key == 999 && e.Value == 7 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("buffered insert invisible to Range")
	}
}

func TestFlushAllEmptiesBuffers(t *testing.T) {
	tr := newTestTree()
	seq := workload.NewRandomUnique(9)
	const n = 1 << 12
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	tr.FlushAll()
	if tr.BufferedCount() != 0 {
		t.Fatalf("BufferedCount = %d after FlushAll", tr.BufferedCount())
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Skeleton().Len() != n {
		t.Fatalf("skeleton holds %d, want %d", tr.Skeleton().Len(), n)
	}
	tr.CheckInvariants()
}

func TestDifferential(t *testing.T) {
	tr := newTestTree()
	ref := make(map[uint64]uint64)
	rng := workload.NewRNG(21)
	for i := 0; i < 12000; i++ {
		k := rng.Uint64() % 900
		if rng.Uint64()%3 != 0 {
			v := rng.Uint64()
			tr.Insert(k, v)
			ref[k] = v
		} else {
			wv, wok := ref[k]
			gv, gok := tr.Search(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Search(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
	}
	tr.FlushAll()
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	var prev uint64
	count := 0
	tr.Range(0, ^uint64(0), func(e core.Element) bool {
		if count > 0 && e.Key <= prev {
			t.Fatalf("range out of order")
		}
		if ref[e.Key] != e.Value {
			t.Fatalf("range value for %d = %d, want %d", e.Key, e.Value, ref[e.Key])
		}
		prev = e.Key
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("range yielded %d, want %d", count, len(ref))
	}
}

func TestQuickDistinctKeys(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := newTestTree()
		seen := make(map[uint64]uint64)
		for i, k16 := range raw {
			k := uint64(k16)
			seen[k] = uint64(i)
			tr.Insert(k, uint64(i))
		}
		for k, v := range seen {
			if gv, ok := tr.Search(k); !ok || gv != v {
				return false
			}
		}
		tr.FlushAll()
		return tr.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVEBOrderComplete(t *testing.T) {
	// Every node and every buffer chunk appears exactly once in the
	// computed layout order, with each node's chunks in ascending height.
	tr := New(Options{Fanout: 4, Space: dam.NewStore(4096, 1<<20).Space("shuttle")})
	seq := workload.NewRandomUnique(31)
	for i := 0; i < 1<<12; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	order := tr.lay.vebOrder()

	nodes := make(map[*swbstNode]bool)
	chunks := make(map[*buffer]bool)
	lastHeight := make(map[*buffer]int)
	_ = lastHeight
	for _, it := range order {
		if it.nd != nil {
			if nodes[it.nd] {
				t.Fatal("node emitted twice")
			}
			nodes[it.nd] = true
		}
		if it.buf != nil {
			if chunks[it.buf] {
				t.Fatal("chunk emitted twice")
			}
			chunks[it.buf] = true
		}
	}
	// Count expectation by walking the tree.
	wantNodes, wantChunks := 0, 0
	var walk func(nd *swbstNode)
	walk = func(nd *swbstNode) {
		wantNodes++
		if a, ok := nd.Aux.(*aux); ok {
			for _, list := range a.bufs {
				wantChunks += len(list)
			}
		}
		for _, ch := range nd.Children {
			walk(ch)
		}
	}
	walk(tr.Skeleton().Root())
	if len(nodes) != wantNodes {
		t.Fatalf("order has %d nodes, tree has %d", len(nodes), wantNodes)
	}
	if len(chunks) != wantChunks {
		t.Fatalf("order has %d chunks, tree has %d", len(chunks), wantChunks)
	}
}

// TestSearchTransfersLogarithmic: cold searches on the laid-out shuttle
// tree cost O(log_B N)-flavoured transfers — far below one transfer per
// comparison, confirming the layout clusters path neighbourhoods.
func TestSearchTransfersLogarithmic(t *testing.T) {
	store := dam.NewStore(4096, 4096*8)
	tr := New(Options{Fanout: 8, Space: store.Space("shuttle")})
	const n = 1 << 14
	seq := workload.NewRandomUnique(41)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	store.DropCache()
	store.ResetCounters()
	const searches = 128
	probe := workload.NewRandomUnique(41)
	for i := 0; i < searches; i++ {
		tr.Search(probe.Next())
	}
	perSearch := float64(store.Transfers()) / searches
	// Height ~ log_8(2^14) ~ 5 plus buffer probes; anything beyond ~4x
	// height indicates the layout is not clustering.
	bound := float64(4 * (tr.Height() + 2))
	if perSearch > bound {
		t.Fatalf("cold search transfers = %v, want <= %v", perSearch, bound)
	}
}

// swbstNode aliases the skeleton node type for test readability.
type swbstNode = swbst.Node
