package shuttle

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/swbst"
)

// Options configures a shuttle tree.
type Options struct {
	// Fanout is the SWBST balance parameter c (node degrees Theta(c)).
	// Must be at least 4.
	Fanout int
	// HFunc is the buffer-height-index function; nil selects ScaledH
	// (see the package comment). Use PaperH for the paper's exact
	// function.
	HFunc func(int) int
	// Space receives DAM charges through the van Emde Boas layout; nil
	// disables accounting.
	Space *dam.Space
	// RelayoutEvery rebuilds the exact vEB layout after this many node
	// splits (amortizing the incremental placement drift). Zero selects
	// a default of 1024; negative disables rebuilds.
	RelayoutEvery int
}

// Tree is a shuttle tree: an SWBST skeleton whose child pointers carry
// lists of geometrically growing buffers, all laid out in vEB order.
//
// The dictionary supports Insert, Search, and Range (the paper's scope;
// no deletes). Len is exact for distinct-key workloads and after
// FlushAll.
//
// Shared reads are conditional, reported honestly via SharedReads: with
// DAM accounting off the read path only reads structure state (plus the
// atomic search counter), but with a space attached the charge path
// places layout chunks lazily (layout.bufBase), a structural mutation —
// so an accounted tree stays exclusive-only and the prober says so.
type Tree struct {
	opt      Options
	skel     *swbst.Tree
	buffered int // elements currently in buffers
	lay      *layout

	// stats carries every counter except Searches, which is atomic so
	// bracketed concurrent searches never race Stats() readers.
	stats    core.Stats
	searches atomic.Uint64
}

// aux is the shuttle-tree state hung off each internal skeleton node.
type aux struct {
	// bufs[i] is the buffer list of child i, smallest (newest) first.
	bufs [][]*buffer
	// slot is the node's position in the layout PMA.
	slot int
}

// buffer is one buffer in a child pointer's linked list: a sorted slab
// standing in for a height-bounded recursive shuttle tree (at laptop
// scale such trees have no buffers of their own, so a sorted slab is the
// same structure). Capacity is c^height, preallocated as a single layout
// chunk per Section 2's "a buffer is allocated as a single chunk C in
// the PMA".
type buffer struct {
	items  []core.Element // sorted by key, distinct
	cap    int
	height int // the F_H(j) that sized this buffer
	slot   int // layout PMA slot of the chunk
}

var (
	_ core.Dictionary       = (*Tree)(nil)
	_ core.SharedReader     = (*Tree)(nil)
	_ core.SharedReadProber = (*Tree)(nil)
)

// NoBuffers is an HFunc yielding no buffers at any height: the resulting
// structure is a strongly weight-balanced tree in a vEB layout embedded
// in a PMA — precisely the cache-oblivious B-tree of Bender, Demaine,
// and Farach-Colton that Section 1 positions the shuttle tree against
// ("retains the asymptotic search cost of the CO B-tree while improving
// the insert cost"). Use NewCOBTree for the packaged constructor.
func NoBuffers(int) int { return 0 }

// NewCOBTree returns the CO-B-tree baseline: the shuttle machinery with
// buffering disabled, so every insert goes straight to its leaf
// (amortized O(log_{B+1} N + (log^2 N)/B) transfers) and searches cost
// O(log_{B+1} N) like the shuttle tree's.
func NewCOBTree(fanout int, space *dam.Space) *Tree {
	return New(Options{Fanout: fanout, HFunc: NoBuffers, Space: space})
}

// New returns an empty shuttle tree.
func New(opt Options) *Tree {
	if opt.Fanout < 4 {
		panic("shuttle: fanout must be at least 4")
	}
	if opt.HFunc == nil {
		opt.HFunc = ScaledH
	}
	if opt.RelayoutEvery == 0 {
		opt.RelayoutEvery = 1024
	}
	t := &Tree{opt: opt, skel: swbst.New(swbst.Options{Fanout: opt.Fanout})}
	t.lay = newLayout(t)
	return t
}

// Fanout reports the balance parameter c.
func (t *Tree) Fanout() int { return t.opt.Fanout }

// Height reports the skeleton height.
func (t *Tree) Height() int { return t.skel.Height() }

// Len implements core.Dictionary.
func (t *Tree) Len() int { return t.skel.Len() + t.buffered }

// Stats implements core.Statser; safe concurrently with bracketed
// shared reads (Searches is loaded atomically).
func (t *Tree) Stats() core.Stats {
	st := t.stats
	st.Searches = t.searches.Load()
	return st
}

// SharedReads implements core.SharedReadProber: only an unaccounted
// tree is shared-read safe (see the Tree comment — the accounted charge
// path places layout chunks lazily during searches).
func (t *Tree) SharedReads() bool { return t.opt.Space == nil }

// BeginSharedReads implements core.SharedReader. Callers must gate on
// SharedReads (core.AsSharedReader does); for an unaccounted tree the
// bracket is a no-op.
func (t *Tree) BeginSharedReads() { t.opt.Space.BeginSharedReads() }

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (t *Tree) EndSharedReads() { t.opt.Space.EndSharedReads() }

// auxOf returns (creating on demand) the shuttle state of internal node
// nd, whose children sit at height h-1 for node height h.
func (t *Tree) auxOf(nd *swbst.Node) *aux {
	if nd.Aux == nil {
		nd.Aux = &aux{slot: -1}
	}
	return nd.Aux.(*aux)
}

// bufferListFor builds the buffer list shape for a child at height h:
// one buffer per height in BufferHeights(h), capacity c^height each.
func (t *Tree) bufferListFor(h int) []*buffer {
	heights := BufferHeights(h, t.opt.HFunc)
	out := make([]*buffer, 0, len(heights))
	for _, bh := range heights {
		capacity := 1
		for i := 0; i < bh; i++ {
			capacity *= t.opt.Fanout
		}
		out = append(out, &buffer{cap: capacity, height: bh, slot: -1})
	}
	return out
}

// ensureBufs makes sure internal node nd (at height h) has a buffer list
// per child.
func (t *Tree) ensureBufs(nd *swbst.Node, h int) *aux {
	a := t.auxOf(nd)
	for len(a.bufs) < len(nd.Children) {
		bl := t.bufferListFor(h - 1)
		a.bufs = append(a.bufs, bl)
		t.lay.placeBuffers(nd, bl)
	}
	return a
}

// Insert implements core.Dictionary: the element starts at the root and
// pauses in buffers on the way down, getting shuttled when they overflow.
func (t *Tree) Insert(key, value uint64) {
	t.stats.Inserts++
	root := t.skel.Root()
	if root == nil || root.Leaf {
		t.leafInsert(core.Element{Key: key, Value: value})
		return
	}
	t.insertAt(root, t.skel.Height(), core.Element{Key: key, Value: value})
	t.maybeRelayout()
}

// insertAt inserts e below internal node nd (at height h): into the
// smallest buffer of the appropriate child pointer, or directly into the
// child when the list is empty.
func (t *Tree) insertAt(nd *swbst.Node, h int, e core.Element) {
	ci := childIdx(nd.Pivots, e.Key)
	a := t.ensureBufs(nd, h)
	t.lay.chargeNode(nd)
	if len(a.bufs[ci]) == 0 {
		t.descend(nd, h, e)
		return
	}
	t.bufferInsert(nd, h, ci, 0, e)
}

// descend bypasses buffers: route e into the child (recomputed fresh, so
// splits during a drain cannot misroute).
func (t *Tree) descend(nd *swbst.Node, h int, e core.Element) {
	ci := childIdx(nd.Pivots, e.Key)
	child := nd.Children[ci]
	if child.Leaf {
		t.leafInsert(e)
		return
	}
	t.insertAt(child, h-1, e)
}

// bufferInsert puts e into buffer bi of child ci's list, cascading
// overflow into the next buffer and finally into the child node.
func (t *Tree) bufferInsert(nd *swbst.Node, h, ci, bi int, e core.Element) {
	a := t.auxOf(nd)
	b := a.bufs[ci][bi]
	// Sorted insert with replace-on-duplicate (the slab stands for a
	// small shuttle tree with update semantics).
	i := sort.Search(len(b.items), func(i int) bool { return b.items[i].Key >= e.Key })
	t.lay.chargeBufferProbe(b, i)
	if i < len(b.items) && b.items[i].Key == e.Key {
		b.items[i] = e
		t.lay.chargeBufferWrite(b, i, 1)
		return
	}
	b.items = append(b.items, core.Element{})
	copy(b.items[i+1:], b.items[i:])
	b.items[i] = e
	t.buffered++
	t.lay.chargeBufferWrite(b, i, len(b.items)-i)

	if len(b.items) <= b.cap {
		return
	}
	// Overflow: shuttle every item onward. The list may have been
	// rebuilt by splits triggered mid-drain, so re-fetch it per item via
	// the routing helpers.
	items := b.items
	b.items = nil
	t.buffered -= len(items)
	t.stats.Moves += uint64(len(items))
	t.lay.chargeBufferScan(b)
	for _, it := range items {
		t.shuttleOnward(nd, h, bi, it)
	}
}

// shuttleOnward moves an overflowed item to the next buffer of its
// (re-resolved) child list, or into the child node after the last.
func (t *Tree) shuttleOnward(nd *swbst.Node, h, fromBi int, e core.Element) {
	ci := childIdx(nd.Pivots, e.Key)
	a := t.ensureBufs(nd, h)
	if fromBi+1 < len(a.bufs[ci]) {
		t.bufferInsert(nd, h, ci, fromBi+1, e)
		return
	}
	t.descend(nd, h, e)
}

// leafInsert sends e to its skeleton leaf, letting SWBST splits trickle
// up; the split hook maintains buffer lists and the layout.
func (t *Tree) leafInsert(e core.Element) {
	t.skel.InsertWithHooks(e.Key, e.Value, t.splitHook)
}

// splitHook maintains shuttle state when skeleton node old splits into
// (old, sib) at the given height.
func (t *Tree) splitHook(old, sib *swbst.Node, height int) {
	t.stats.Moves++ // count restructuring events
	if !old.Leaf {
		// The children that moved to sib carry their buffer lists.
		oa := t.auxOf(old)
		sa := t.auxOf(sib)
		keep := len(old.Children)
		if keep > len(oa.bufs) {
			keep = len(oa.bufs)
		}
		sa.bufs = append(sa.bufs, oa.bufs[keep:]...)
		oa.bufs = oa.bufs[:keep]
	}
	// The parent gains a child entry: give sib its own (preallocated)
	// buffer list and partition old's buffered items by the separator.
	parent := old.Parent
	if parent == nil {
		return
	}
	pa := t.auxOf(parent)
	ci := -1
	for i, ch := range parent.Children {
		if ch == old {
			ci = i
			break
		}
	}
	if ci < 0 || ci+1 >= len(parent.Children) || parent.Children[ci+1] != sib {
		panic("shuttle: split hook cannot locate the new sibling")
	}
	// Fill any missing lists up to (but not including) the new sibling's
	// position; a freshly created root starts with none, and sib's list
	// is inserted explicitly below.
	for len(pa.bufs) < ci+1 {
		bl := t.bufferListFor(height)
		pa.bufs = append(pa.bufs, bl)
		t.lay.placeBuffers(parent, bl)
	}
	sep := parent.Pivots[ci]
	newList := t.bufferListFor(height)
	t.lay.placeSibling(old, sib, newList)
	// Partition each of old's buffers: items > sep move to sib's list.
	oldList := pa.bufs[ci]
	for bi, b := range oldList {
		if len(b.items) == 0 || bi >= len(newList) {
			continue
		}
		cut := sort.Search(len(b.items), func(i int) bool { return b.items[i].Key > sep })
		if cut < len(b.items) {
			newList[bi].items = append(newList[bi].items, b.items[cut:]...)
			b.items = b.items[:cut]
			t.lay.chargeBufferScan(b)
			t.lay.chargeBufferScan(newList[bi])
		}
	}
	pa.bufs = append(pa.bufs, nil)
	copy(pa.bufs[ci+2:], pa.bufs[ci+1:])
	pa.bufs[ci+1] = newList
}

// maybeRelayout rebuilds the exact vEB layout after enough splits.
func (t *Tree) maybeRelayout() {
	if t.opt.RelayoutEvery <= 0 {
		return
	}
	if t.skel.Splits()-t.lay.lastRebuildSplits >= uint64(t.opt.RelayoutEvery) {
		t.lay.rebuild()
	}
}

// Search implements core.Dictionary: descend the root-to-leaf path,
// checking each child pointer's buffers smallest (newest) to largest.
func (t *Tree) Search(key uint64) (uint64, bool) {
	t.searches.Add(1)
	nd := t.skel.Root()
	if nd == nil {
		return 0, false
	}
	for !nd.Leaf {
		t.lay.chargeNode(nd)
		ci := childIdx(nd.Pivots, key)
		if a, ok := nd.Aux.(*aux); ok && ci < len(a.bufs) {
			for _, b := range a.bufs[ci] {
				if len(b.items) == 0 {
					continue
				}
				i := sort.Search(len(b.items), func(i int) bool { return b.items[i].Key >= key })
				t.lay.chargeBufferProbe(b, i)
				if i < len(b.items) && b.items[i].Key == key {
					return b.items[i].Value, true
				}
			}
		}
		nd = nd.Children[ci]
	}
	t.lay.chargeNode(nd)
	i := sort.Search(len(nd.Elems), func(i int) bool { return nd.Elems[i].Key >= key })
	if i < len(nd.Elems) && nd.Elems[i].Key == key {
		return nd.Elems[i].Value, true
	}
	return 0, false
}

func childIdx(pivots []uint64, key uint64) int {
	return sort.Search(len(pivots), func(i int) bool { return pivots[i] >= key })
}

// Range implements core.Dictionary: collect the overlapping leaves and
// every buffer on paths into the range, resolving duplicates newest-wins
// (a shallower buffer is newer; within one path, the smaller buffer
// index is newer).
func (t *Tree) Range(lo, hi uint64, fn func(core.Element) bool) {
	root := t.skel.Root()
	if root == nil {
		return
	}
	type prio struct {
		e    core.Element
		rank int // smaller = newer
	}
	resolved := make(map[uint64]prio)
	var walk func(nd *swbst.Node, depth int)
	walk = func(nd *swbst.Node, depth int) {
		t.lay.chargeNode(nd)
		if nd.Leaf {
			i := sort.Search(len(nd.Elems), func(i int) bool { return nd.Elems[i].Key >= lo })
			for ; i < len(nd.Elems) && nd.Elems[i].Key <= hi; i++ {
				e := nd.Elems[i]
				if prev, ok := resolved[e.Key]; !ok || 1<<30 < prev.rank {
					// Leaves are the oldest layer (rank max).
					if !ok {
						resolved[e.Key] = prio{e: e, rank: 1 << 30}
					}
				}
			}
			return
		}
		a, hasAux := nd.Aux.(*aux)
		childLo := uint64(0)
		for c, ch := range nd.Children {
			childHi := ^uint64(0)
			if c < len(nd.Pivots) {
				childHi = nd.Pivots[c]
			}
			if childLo <= hi && childHi >= lo {
				if hasAux && c < len(a.bufs) {
					for bi, b := range a.bufs[c] {
						t.lay.chargeBufferScan(b)
						rank := depth*16 + bi
						i := sort.Search(len(b.items), func(i int) bool { return b.items[i].Key >= lo })
						for ; i < len(b.items) && b.items[i].Key <= hi; i++ {
							e := b.items[i]
							if prev, ok := resolved[e.Key]; !ok || rank < prev.rank {
								resolved[e.Key] = prio{e: e, rank: rank}
							}
						}
					}
				}
				walk(ch, depth+1)
			}
			if c < len(nd.Pivots) {
				if nd.Pivots[c] == ^uint64(0) {
					break
				}
				childLo = nd.Pivots[c] + 1
			}
		}
	}
	walk(root, 0)

	keys := make([]uint64, 0, len(resolved))
	for k := range resolved {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(resolved[k].e) {
			return
		}
	}
}

// FlushAll drains every buffer to the leaves, making Len exact.
func (t *Tree) FlushAll() {
	root := t.skel.Root()
	if root == nil || root.Leaf {
		return
	}
	// Draining can trigger leaf inserts, splits, and buffer-list
	// restructuring; drain one buffer at a time and restart the walk so
	// iteration never races the mutation. Drain deepest-first (children
	// before the node, larger buffer indices before smaller) so older
	// copies reach the leaves before the newer copies that must
	// overwrite them — descendFlush bypasses intermediate buffers, so
	// shallow-first draining would let stale values land last.
	for {
		var walk func(nd *swbst.Node) bool
		walk = func(nd *swbst.Node) bool {
			if nd.Leaf {
				return false
			}
			for _, ch := range nd.Children {
				if walk(ch) {
					return true
				}
			}
			if a, ok := nd.Aux.(*aux); ok {
				for ci := range a.bufs {
					for bi := len(a.bufs[ci]) - 1; bi >= 0; bi-- {
						b := a.bufs[ci][bi]
						if len(b.items) == 0 {
							continue
						}
						items := b.items
						b.items = nil
						t.buffered -= len(items)
						for _, it := range items {
							t.descendFlush(nd, it)
						}
						return true
					}
				}
			}
			return false
		}
		if !walk(t.skel.Root()) {
			return
		}
	}
}

// descendFlush routes an item to its leaf directly (used by FlushAll).
func (t *Tree) descendFlush(nd *swbst.Node, e core.Element) {
	ci := childIdx(nd.Pivots, e.Key)
	child := nd.Children[ci]
	if child.Leaf {
		t.leafInsert(e)
		return
	}
	t.descendFlush(child, e)
}

// Skeleton exposes the underlying SWBST for tests.
func (t *Tree) Skeleton() *swbst.Tree { return t.skel }

// BufferedCount reports how many elements currently sit in buffers.
func (t *Tree) BufferedCount() int { return t.buffered }

// CheckInvariants validates shuttle-specific invariants on top of the
// skeleton's: buffer list shapes match child heights, buffered items lie
// within their child pointer's key range, and slabs are sorted.
func (t *Tree) CheckInvariants() {
	t.skel.CheckInvariants(true)
	root := t.skel.Root()
	if root == nil {
		return
	}
	h := t.skel.Height()
	var walk func(nd *swbst.Node, height int, lo, hi uint64)
	walk = func(nd *swbst.Node, height int, lo, hi uint64) {
		if nd.Leaf {
			return
		}
		a, ok := nd.Aux.(*aux)
		if ok && len(a.bufs) > len(nd.Children) {
			panic("shuttle: more buffer lists than children")
		}
		childLo := lo
		for c, ch := range nd.Children {
			childHi := hi
			if c < len(nd.Pivots) {
				childHi = nd.Pivots[c]
			}
			if ok && c < len(a.bufs) {
				want := BufferHeights(height-1, t.opt.HFunc)
				if len(a.bufs[c]) != len(want) {
					panic("shuttle: buffer list shape mismatch")
				}
				for bi, b := range a.bufs[c] {
					if b.height != want[bi] {
						panic("shuttle: buffer height mismatch")
					}
					if len(b.items) > b.cap {
						panic("shuttle: buffer over capacity")
					}
					for i, e := range b.items {
						if e.Key < childLo || e.Key > childHi {
							panic("shuttle: buffered item outside child range")
						}
						if i > 0 && b.items[i-1].Key >= e.Key {
							panic("shuttle: buffer slab out of order")
						}
					}
				}
			}
			walk(ch, height-1, childLo, childHi)
			if c < len(nd.Pivots) {
				childLo = nd.Pivots[c] + 1
			}
		}
	}
	walk(root, h, 0, ^uint64(0))
}
