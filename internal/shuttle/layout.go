package shuttle

import (
	"repro/internal/core"
	"repro/internal/pma"
	"repro/internal/swbst"
)

// layItem is one unit of the layout PMA: a skeleton node or a buffer
// chunk (exactly one of the fields is set).
type layItem struct {
	nd  *swbst.Node
	buf *buffer
}

// layout maintains the van Emde Boas order of nodes and buffer chunks in
// a packed-memory array and charges the tree's DAM traffic at the
// resulting addresses.
//
// Dynamic maintenance is the engineering substitution documented in
// DESIGN.md: splits place the new sibling (and its preallocated chunks)
// immediately after the split node — Lemma 7's adjacency property — and
// the exact recursive order of Section 2 is restored by periodic
// rebuilds (amortized O(1) layout work per insert for the default
// rebuild cadence). Byte offsets approximate every item as one slot of
// c elements; buffer scans charge their true extent from the slot's
// base, so adjacent extents may overlap — order and locality, the
// quantities the cost model measures, are preserved.
type layout struct {
	t                 *Tree
	p                 *pma.PMA[layItem]
	unit              int64
	lastRebuildSplits uint64
}

func newLayout(t *Tree) *layout {
	l := &layout{t: t, unit: int64(t.opt.Fanout) * core.ElementBytes}
	l.p = pma.New(pma.Options[layItem]{
		SlotBytes: l.unit,
		Space:     t.opt.Space,
		OnMove:    l.onMove,
	})
	return l
}

func (l *layout) onMove(it layItem, idx int) {
	if it.nd != nil {
		l.t.auxOf(it.nd).slot = idx
	} else if it.buf != nil {
		it.buf.slot = idx
	}
}

// slotOf returns the layout slot of node nd, placing it lazily (root or
// detached nodes get appended after the current last item).
func (l *layout) slotOf(nd *swbst.Node) int {
	a := l.t.auxOf(nd)
	if a.slot >= 0 {
		return a.slot
	}
	after := -1
	if nd.Parent != nil {
		if pa := l.t.auxOf(nd.Parent); pa.slot >= 0 {
			after = pa.slot
		}
	}
	if after < 0 {
		after = l.p.Prev(l.p.Capacity())
	}
	a.slot = l.p.InsertAfter(after, layItem{nd: nd})
	return a.slot
}

// chargeNode charges one node visit (Theta(c) elements = one slot).
func (l *layout) chargeNode(nd *swbst.Node) {
	if l.t.opt.Space == nil || nd == nil {
		return
	}
	slot := l.slotOf(nd)
	l.t.opt.Space.Read(int64(slot)*l.unit, l.unit)
}

// bufBase returns the byte base of a buffer chunk, placing it lazily.
func (l *layout) bufBase(b *buffer) int64 {
	if b.slot < 0 {
		after := l.p.Prev(l.p.Capacity())
		b.slot = l.p.InsertAfter(after, layItem{buf: b})
	}
	return int64(b.slot) * l.unit
}

// chargeBufferProbe charges one element read at position i of chunk b.
func (l *layout) chargeBufferProbe(b *buffer, i int) {
	if l.t.opt.Space == nil {
		return
	}
	l.t.opt.Space.Read(l.bufBase(b)+int64(i)*core.ElementBytes, core.ElementBytes)
}

// chargeBufferWrite charges writing n elements at position i of chunk b.
func (l *layout) chargeBufferWrite(b *buffer, i, n int) {
	if l.t.opt.Space == nil || n <= 0 {
		return
	}
	l.t.opt.Space.Write(l.bufBase(b)+int64(i)*core.ElementBytes, int64(n)*core.ElementBytes)
}

// chargeBufferScan charges reading the chunk's full preallocated extent.
func (l *layout) chargeBufferScan(b *buffer) {
	if l.t.opt.Space == nil {
		return
	}
	l.t.opt.Space.Read(l.bufBase(b), int64(b.cap)*core.ElementBytes)
}

// placeBuffers inserts a child's chunk list right after its owner node
// (smaller buffers closer, per the recursive layout).
func (l *layout) placeBuffers(nd *swbst.Node, list []*buffer) {
	if l.t.opt.Space == nil {
		return // accounting disabled: layout maintenance is pure overhead
	}
	after := l.slotOf(nd)
	for _, b := range list {
		after = l.p.InsertAfter(after, layItem{buf: b})
		b.slot = after
	}
}

// placeSibling inserts the new sibling node and its fresh chunk list
// immediately after the node it split from (Lemma 7: "All nodes and
// buffers in U1 immediately precede all those in U2").
func (l *layout) placeSibling(old, sib *swbst.Node, newList []*buffer) {
	if l.t.opt.Space == nil {
		return
	}
	after := l.slotOf(old)
	sa := l.t.auxOf(sib)
	sa.slot = l.p.InsertAfter(after, layItem{nd: sib})
	cur := sa.slot
	for _, b := range newList {
		cur = l.p.InsertAfter(cur, layItem{buf: b})
		b.slot = cur
	}
}

// rebuild recomputes the exact Fibonacci-vEB order and reloads the PMA.
func (l *layout) rebuild() {
	if l.t.opt.Space == nil {
		l.lastRebuildSplits = l.t.skel.Splits()
		return
	}
	order := l.vebOrder()
	l.p = pma.New(pma.Options[layItem]{
		SlotBytes: l.unit,
		Space:     l.t.opt.Space,
		OnMove:    l.onMove,
	})
	after := -1
	for _, it := range order {
		after = l.p.InsertAfter(after, it)
		l.onMove(it, after)
	}
	l.lastRebuildSplits = l.t.skel.Splits()
	// Charge one full sequential pass: the rebuild scans the structure.
	if l.t.opt.Space != nil {
		l.t.opt.Space.Write(0, int64(len(order))*l.unit)
	}
}

// vebOrder computes the layout order of Section 2: split the tree at the
// largest Fibonacci number below its height; lay out the top recursive
// subtree, then the top subtree's leaves' next buffer class, then each
// bottom recursive subtree followed by its leaves' next class. Each
// boundary appearance of a node emits its next-larger buffer class, so
// smaller buffers land nearer their node — the paper's "a node has a
// buffer for every recursive subtree in which it is a leaf".
func (l *layout) vebOrder() []layItem {
	root := l.t.skel.Root()
	if root == nil {
		return nil
	}
	h := l.t.skel.Height()
	var out []layItem
	classCursor := make(map[*swbst.Node]int)

	emitClass := func(u *swbst.Node) {
		a, ok := u.Aux.(*aux)
		if !ok {
			return
		}
		cls := classCursor[u]
		emitted := false
		for _, list := range a.bufs {
			if cls < len(list) {
				out = append(out, layItem{buf: list[cls]})
				emitted = true
			}
		}
		if emitted {
			classCursor[u] = cls + 1
		}
	}

	// nodesAtDepth collects nodes at relative depth d below r (r = 1).
	var nodesAtDepth func(r *swbst.Node, d int, acc *[]*swbst.Node)
	nodesAtDepth = func(r *swbst.Node, d int, acc *[]*swbst.Node) {
		if d == 1 {
			*acc = append(*acc, r)
			return
		}
		for _, ch := range r.Children {
			nodesAtDepth(ch, d-1, acc)
		}
	}

	var emitTree func(r *swbst.Node, levels int)
	emitTree = func(r *swbst.Node, levels int) {
		if levels <= 1 {
			out = append(out, layItem{nd: r})
			emitClass(r)
			return
		}
		split := LargestFibBelow(levels)
		top := levels - split
		emitTree(r, top)
		var boundary []*swbst.Node
		nodesAtDepth(r, top, &boundary)
		for _, u := range boundary {
			emitClass(u)
		}
		var bottoms []*swbst.Node
		nodesAtDepth(r, top+1, &bottoms)
		for _, v := range bottoms {
			emitTree(v, split)
			var leaves []*swbst.Node
			nodesAtDepth(v, split, &leaves)
			for _, w := range leaves {
				emitClass(w)
			}
		}
	}
	emitTree(root, h)

	// Sweep any classes the truncated recursion did not reach.
	var sweep func(nd *swbst.Node)
	sweep = func(nd *swbst.Node) {
		if a, ok := nd.Aux.(*aux); ok {
			for {
				cls := classCursor[nd]
				more := false
				for _, list := range a.bufs {
					if cls < len(list) {
						more = true
						break
					}
				}
				if !more {
					break
				}
				emitClass(nd)
			}
		}
		for _, ch := range nd.Children {
			sweep(ch)
		}
	}
	sweep(root)
	return out
}
