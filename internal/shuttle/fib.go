// Package shuttle implements the shuttle tree of Section 2: a strongly
// weight-balanced search tree whose child pointers carry linked lists of
// buffers with doubly-exponentially increasing sizes, laid out in memory
// by a Fibonacci-split van Emde Boas recursion and embedded in a
// packed-memory array.
//
// Scale adaptation (documented in DESIGN.md): with the paper's
// buffer-height-index function H(j) = j - ceil(2 log_phi j), buffers
// first appear at Fibonacci factors F_12 = 144, i.e. on trees far beyond
// laptop scale. The implementation therefore defaults to a scaled index
// H(j) = max(1, j-2), which preserves the mechanism (geometrically
// growing buffer lists tied to Fibonacci factors, layout recursion
// alignment) at experiment sizes; the paper-exact function is available
// as PaperH and used by the asymptotic unit tests.
package shuttle

import "math"

// fibs holds Fibonacci numbers F_0 = 0, F_1 = 1, F_2 = 1, F_3 = 2, ...
// out to beyond any height reachable in practice.
var fibs = func() []int {
	f := make([]int, 64)
	f[0], f[1] = 0, 1
	for i := 2; i < len(f); i++ {
		f[i] = f[i-1] + f[i-2]
	}
	return f
}()

// Fib returns the kth Fibonacci number F_k.
func Fib(k int) int {
	if k < 0 || k >= len(fibs) {
		panic("shuttle: Fibonacci index out of range")
	}
	return fibs[k]
}

// fibIndexAtMost returns the largest k with F_k <= h (h >= 1), preferring
// the larger index for the duplicated value 1 (F_2).
func fibIndexAtMost(h int) int {
	k := 2
	for k+1 < len(fibs) && fibs[k+1] <= h {
		k++
	}
	return k
}

// LargestFibBelow returns the largest Fibonacci number strictly smaller
// than h, used by the layout recursion's split rule. h must exceed 1.
func LargestFibBelow(h int) int {
	if h <= 1 {
		panic("shuttle: no Fibonacci number below h")
	}
	k := fibIndexAtMost(h - 1)
	return fibs[k]
}

// FibFactor computes the Fibonacci factor x(h) of Section 2: if h is a
// Fibonacci number then x(h) = h; otherwise x(h) = x(h - f) for f the
// largest Fibonacci number less than h.
func FibFactor(h int) int {
	if h < 1 {
		panic("shuttle: Fibonacci factor of non-positive height")
	}
	for {
		k := fibIndexAtMost(h)
		if fibs[k] == h {
			return h
		}
		h -= fibs[k]
	}
}

// fibIndexOf returns k such that F_k = v for a Fibonacci value v >= 1
// (returning the larger index 2 for v = 1, matching x(h)'s use).
func fibIndexOf(v int) int {
	for k := 2; k < len(fibs); k++ {
		if fibs[k] == v {
			return k
		}
	}
	panic("shuttle: not a Fibonacci value")
}

// PaperH is the paper's buffer-height-index function
// H(j) = j - ceil(2 log_phi j); buffer heights are F_{H(j)}.
func PaperH(j int) int {
	if j < 1 {
		panic("shuttle: H of non-positive index")
	}
	phi := (1 + math.Sqrt(5)) / 2
	return j - int(math.Ceil(2*math.Log(float64(j))/math.Log(phi)))
}

// ScaledH is the laptop-scale substitute: H(j) = max(1, j-2), keeping
// buffer heights strictly below the Fibonacci factor's index while
// letting buffers appear on trees of realistic height.
func ScaledH(j int) int {
	if j-2 < 1 {
		return 1
	}
	return j - 2
}

// BufferHeights lists the buffer heights of a node whose CHILD has
// height h (the node itself sits at height h+1): for k with
// F_k = x(h), heights F_{H(j)} for j = j0..k, deduplicated and
// ascending. hFunc selects the buffer-height-index function.
func BufferHeights(h int, hFunc func(int) int) []int {
	if h < 1 {
		return nil
	}
	k := fibIndexOf(FibFactor(h))
	var out []int
	seen := make(map[int]bool)
	for j := 3; j <= k; j++ {
		hj := hFunc(j)
		if hj < 1 || hj >= len(fibs) {
			continue
		}
		bh := fibs[hj]
		if bh < 1 || seen[bh] {
			continue
		}
		seen[bh] = true
		out = append(out, bh)
	}
	// Heights from increasing j are nondecreasing for both H functions;
	// dedup above leaves them ascending.
	return out
}
