package shuttle

import (
	"testing"

	"repro/internal/dam"
	"repro/internal/workload"
)

// TestPaperHTreeDegeneratesGracefully: with the paper-exact H function,
// no buffer appears below Fibonacci factor F_12 = 144, so at laptop
// scale the shuttle tree must behave exactly like its SWBST skeleton —
// and still be fully correct.
func TestPaperHTreeDegeneratesGracefully(t *testing.T) {
	tr := New(Options{Fanout: 4, HFunc: PaperH})
	const n = 1 << 12
	seq := workload.NewRandomUnique(101)
	keys := workload.Take(seq, n)
	for _, k := range keys {
		tr.Insert(k, k+1)
	}
	if tr.BufferedCount() != 0 {
		t.Fatalf("paper-H tree buffered %d elements at height %d; F_12 = 144 is unreachable",
			tr.BufferedCount(), tr.Height())
	}
	for _, k := range keys {
		if v, ok := tr.Search(k); !ok || v != k+1 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	tr.CheckInvariants()
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestScaledVsPaperAgree: the two H functions must give identical query
// results; they differ only in buffering (and hence I/O profile).
func TestScaledVsPaperAgree(t *testing.T) {
	a := New(Options{Fanout: 4, HFunc: ScaledH})
	b := New(Options{Fanout: 4, HFunc: PaperH})
	seq := workload.NewRandomUnique(103)
	const n = 1 << 12
	for i := 0; i < n; i++ {
		k := seq.Next()
		a.Insert(k, k^7)
		b.Insert(k, k^7)
	}
	probe := workload.NewRandomUnique(104)
	for i := 0; i < 2000; i++ {
		p := probe.Next()
		v1, ok1 := a.Search(p)
		v2, ok2 := b.Search(p)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("H functions disagree on Search(%d): (%d,%v) vs (%d,%v)", p, v1, ok1, v2, ok2)
		}
	}
}

// TestFibFactorAlwaysFibonacci: x(h) bottoms out at a Fibonacci value
// for every h, the property Lemma 3's bookkeeping rests on.
func TestFibFactorAlwaysFibonacci(t *testing.T) {
	isFib := make(map[int]bool)
	for k := 1; k < 25; k++ {
		isFib[Fib(k)] = true
	}
	for h := 1; h < 2000; h++ {
		if !isFib[FibFactor(h)] {
			t.Fatalf("FibFactor(%d) = %d is not a Fibonacci number", h, FibFactor(h))
		}
	}
}

// TestFibFactorRecurrence: x(h) = x(h - F) for the largest Fibonacci
// F < h, verified directly against the definition.
func TestFibFactorRecurrence(t *testing.T) {
	for h := 2; h < 1000; h++ {
		isFibH := false
		for k := 1; k < 30; k++ {
			if Fib(k) == h {
				isFibH = true
				break
			}
		}
		if isFibH {
			if FibFactor(h) != h {
				t.Fatalf("FibFactor(%d) = %d, want %d (Fibonacci fixed point)", h, FibFactor(h), h)
			}
			continue
		}
		f := LargestFibBelow(h)
		if FibFactor(h) != FibFactor(h-f) {
			t.Fatalf("FibFactor(%d) = %d != FibFactor(%d) = %d", h, FibFactor(h), h-f, FibFactor(h-f))
		}
	}
}

// TestVEBOrderStaticShape: on a perfect small tree, the vEB order must
// start at the root and place each leaf's smallest buffers adjacent to
// regions containing the leaf.
func TestVEBOrderStaticShape(t *testing.T) {
	tr := New(Options{Fanout: 4})
	seq := workload.NewRandomUnique(105)
	for i := 0; i < 1<<10; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	order := tr.lay.vebOrder()
	if len(order) == 0 {
		t.Fatal("empty vEB order")
	}
	if order[0].nd == nil {
		t.Fatal("vEB order must start with a node (the recursion's top)")
	}
	// Node items must appear root-before-descendants within each
	// root-chain: specifically the skeleton root must precede all of its
	// children.
	rootPos := -1
	childPos := make(map[*swbstNode]int)
	for i, it := range order {
		if it.nd == tr.Skeleton().Root() {
			rootPos = i
		}
		if it.nd != nil {
			childPos[it.nd] = i
		}
	}
	if rootPos < 0 {
		t.Fatal("root missing from order")
	}
	for _, ch := range tr.Skeleton().Root().Children {
		if p, ok := childPos[ch]; !ok || p < rootPos {
			t.Fatalf("child at order %d precedes root at %d", p, rootPos)
		}
	}
}

// TestCOBTreeBaseline: buffering disabled means no element is ever
// buffered, queries still work, and — the §2 claim — at large B the
// buffered shuttle tree inserts with fewer transfers than the CO B-tree
// while searching within a constant factor.
func TestCOBTreeBaseline(t *testing.T) {
	const n = 1 << 13
	cob := NewCOBTree(8, nil)
	seq := workload.NewRandomUnique(111)
	keys := workload.Take(seq, n)
	for _, k := range keys {
		cob.Insert(k, k^1)
	}
	if cob.BufferedCount() != 0 {
		t.Fatalf("CO B-tree buffered %d elements", cob.BufferedCount())
	}
	for _, k := range keys[:512] {
		if v, ok := cob.Search(k); !ok || v != k^1 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}

	// Transfer comparison at a large block size (32 KiB) in the
	// out-of-core regime (1 MiB cache, 2^15 elements): buffers must cut
	// insert transfers below the unbuffered baseline.
	if testing.Short() {
		t.Skip("skipping out-of-core transfer comparison in short mode")
	}
	const big = 1 << 15
	run := func(buffered bool) float64 {
		store := dam.NewStore(1<<15, 1<<20)
		var tr *Tree
		if buffered {
			tr = New(Options{Fanout: 8, Space: store.Space("s")})
		} else {
			tr = NewCOBTree(8, store.Space("s"))
		}
		s := workload.NewRandomUnique(112)
		for i := 0; i < big; i++ {
			k := s.Next()
			tr.Insert(k, k)
		}
		return float64(store.Transfers()) / float64(big)
	}
	shuttleT := run(true)
	cobT := run(false)
	if shuttleT >= cobT {
		t.Fatalf("at B=64KiB shuttle insert transfers (%v) not below CO B-tree (%v)", shuttleT, cobT)
	}
}
