// Package loadgen drives a server (internal/server's wire protocol)
// with internal/workload scenarios over real TCP connections and
// reports client-observed latency.
//
// Each simulated connection runs its own goroutine with a sub-seeded
// scenario stream, so the aggregate traffic has the scenario's skew and
// mix while connections stay independent. Two arrival modes:
//
//   - closed loop (RatePerSec == 0): every connection keeps a fixed
//     pipeline window full — send until Pipeline requests are in
//     flight, then read one reply per send. Latency is measured from
//     send to reply: pure service + network time.
//   - open loop (RatePerSec > 0): requests are scheduled on a fixed
//     interval split evenly across connections, and latency is measured
//     from the *scheduled* send time, so queueing delay when the server
//     falls behind shows up in the tail — the coordinated-omission-free
//     number.
//
// ChurnEvery recycles connections mid-run (drain, close, re-dial),
// exercising the server's accept path and per-connection state
// teardown under load.
package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/workload"
)

// subSeedMult decorrelates per-connection streams (golden-ratio
// multiplier, same family the shard map uses).
const subSeedMult = 0x9E3779B97F4A7C15

// valueMixin makes stored values key-derived so any reader can verify
// them.
const valueMixin = 0xA5A5A5A5A5A5A5A5

// Value is the value the generator stores for a key (exported so
// checkers can verify reads).
func Value(key uint64) uint64 { return key ^ valueMixin }

// Config describes one load-generation run.
type Config struct {
	// Addr is the server's TCP address.
	Addr string

	// Scenario shapes the traffic (skew, arrival, mix). Its Seed
	// decorrelates whole runs; each connection sub-seeds from it.
	Scenario workload.Scenario

	// Conns is the number of concurrent connections (default 1).
	Conns int

	// Ops is the total operation count across all connections.
	Ops int

	// Pipeline is the per-connection in-flight window (default 1 =
	// strict request/reply).
	Pipeline int

	// RatePerSec > 0 switches to open-loop arrival at that aggregate
	// rate; 0 runs closed-loop.
	RatePerSec float64

	// ChurnEvery > 0 drains and re-dials each connection after that
	// many operations.
	ChurnEvery int

	// Preload inserts this many sequential keys through BATCH frames
	// before the measured phase, so read-heavy scenarios hit a
	// populated dictionary.
	Preload int

	// Timeout bounds dials and, when positive, the whole run.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Summary aggregates a run: per-class client-observed latency, op and
// error counts, and wall-clock duration.
type Summary struct {
	Lat     [server.NumClasses]hist.Hist
	Ops     uint64 // replies received and counted
	Errors  uint64 // non-OK replies outside the expected set
	Elapsed time.Duration
	Conns   int
}

// OpsPerSec is the aggregate throughput.
//
//repro:readonly
func (s *Summary) OpsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// classOf maps a workload op kind to its latency class.
func classOf(k workload.OpKind) int {
	switch k {
	case workload.OpInsert:
		return server.ClassPut
	case workload.OpDelete:
		return server.ClassDel
	case workload.OpScan:
		return server.ClassRange
	}
	return server.ClassGet
}

// pending is one in-flight request awaiting its reply.
type pending struct {
	class int
	sent  time.Time
}

// Run preloads (when configured) and then drives the configured
// scenario, returning the aggregated summary.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	sc := cfg.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	if cfg.Preload > 0 {
		if err := preload(cfg); err != nil {
			return nil, fmt.Errorf("loadgen: preload: %w", err)
		}
	}

	perConn := cfg.Ops / cfg.Conns
	if perConn == 0 {
		perConn = 1
	}
	var interval time.Duration
	if cfg.RatePerSec > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Conns) / cfg.RatePerSec)
	}

	sum := &Summary{Conns: cfg.Conns}
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Conns; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := sc
			c.Seed = sc.Seed + uint64(id+1)*subSeedMult
			errs[id] = drive(cfg, c, perConn, interval, sum)
		}(id)
	}
	wg.Wait()
	sum.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// preload batches sequential keys in before measurement.
func preload(cfg Config) error {
	cl, err := server.DialTimeout(cfg.Addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	const chunk = 4096
	batch := make([]core.Element, 0, chunk)
	for i := 0; i < cfg.Preload; i++ {
		key := uint64(i)
		batch = append(batch, core.Element{Key: key, Value: Value(key)})
		if len(batch) == chunk || i == cfg.Preload-1 {
			if err := cl.PutBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	return nil
}

// drive runs one connection's share of the load.
func drive(cfg Config, sc workload.Scenario, ops int, interval time.Duration, sum *Summary) error {
	st, err := sc.Stream()
	if err != nil {
		return err
	}
	cl, err := server.DialTimeout(cfg.Addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer func() { cl.Close() }()

	window := make([]pending, 0, cfg.Pipeline)
	var next time.Time
	if interval > 0 {
		next = time.Now()
	}
	sinceChurn := 0

	readOne := func() error {
		p := window[0]
		window = window[:copy(window, window[1:])]
		r, err := cl.ReadReply()
		if err != nil {
			return err
		}
		sum.Lat[p.class].Observe(uint64(time.Since(p.sent)))
		switch r.Status {
		case server.StatusOK, server.StatusNotFound:
			atomic.AddUint64(&sum.Ops, 1)
		case server.StatusUnsupported:
			// A scenario with deletes against a delete-less kind is
			// legitimate traffic; the verdict is still a reply.
			atomic.AddUint64(&sum.Ops, 1)
		default:
			atomic.AddUint64(&sum.Errors, 1)
			return fmt.Errorf("loadgen: server answered %s", server.StatusText(r.Status))
		}
		return nil
	}
	drain := func() error {
		for len(window) > 0 {
			if err := readOne(); err != nil {
				return err
			}
		}
		return nil
	}

	for i := 0; i < ops; i++ {
		// Open loop: wait for the scheduled slot, then timestamp the
		// request at its *schedule*, not the actual send.
		sent := time.Now()
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			sent = next
			next = next.Add(interval)
		}

		if len(window) == cfg.Pipeline {
			if err := cl.Flush(); err != nil {
				return err
			}
			if err := readOne(); err != nil {
				return err
			}
		}

		op := st.Next()
		var serr error
		switch op.Kind {
		case workload.OpInsert:
			serr = cl.SendPut(op.Key, Value(op.Key))
		case workload.OpSearch:
			serr = cl.SendGet(op.Key)
		case workload.OpDelete:
			serr = cl.SendDel(op.Key)
		case workload.OpScan:
			serr = cl.SendRange(op.Key, op.Key+workload.ScanSpan-1, workload.ScanSpan)
		}
		if serr != nil {
			return serr
		}
		window = append(window, pending{class: classOf(op.Kind), sent: sent})

		sinceChurn++
		if cfg.ChurnEvery > 0 && sinceChurn >= cfg.ChurnEvery && i+1 < ops {
			if err := drain(); err != nil {
				return err
			}
			if err := cl.Close(); err != nil {
				return err
			}
			cl, err = server.DialTimeout(cfg.Addr, cfg.Timeout)
			if err != nil {
				return err
			}
			sinceChurn = 0
		}
	}
	return drain()
}

// PerfRecords renders a summary as schema-1 perf records: per-class
// P50/P99/P999 latency plus aggregate throughput, keyed by scenario
// name with the connection count as the X coordinate.
func PerfRecords(cfg Config, sum *Summary, logN int) []perf.Result {
	cfg = cfg.withDefaults()
	op := "serve " + cfg.Scenario.Name()
	var out []perf.Result
	for class := 0; class < server.NumClasses; class++ {
		h := &sum.Lat[class]
		n := h.Count()
		if n == 0 {
			continue
		}
		name := server.ClassName(class)
		for _, q := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
			out = append(out, perf.Result{
				Op:      op,
				Kind:    name + " " + q.label,
				LogN:    logN,
				X:       float64(sum.Conns),
				Samples: int(n),
				NsPerOp: float64(h.Quantile(q.q)),
			})
		}
	}
	if sum.Ops > 0 && sum.Elapsed > 0 {
		out = append(out, perf.Result{
			Op:      op,
			Kind:    "throughput",
			LogN:    logN,
			X:       float64(sum.Conns),
			Samples: int(sum.Ops),
			// ns/op across the whole run; ops/s is 1e9 over this.
			NsPerOp: float64(sum.Elapsed.Nanoseconds()) / float64(sum.Ops),
		})
	}
	return out
}
