package loadgen

import (
	"net"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/workload"
)

// startServer serves a sharded gcola on an ephemeral loopback listener;
// cleanup drains on test exit.
func startServer(t *testing.T) string {
	t.Helper()
	d, err := registry.Build("sharded", registry.WithShards(2), registry.WithInner("gcola"))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func scenario(t *testing.T, spec string) workload.Scenario {
	t.Helper()
	sc, err := workload.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc.KeySpace = 1 << 10
	sc.Seed = 7
	return sc
}

// TestClosedLoopPipelinedChurn drives the closed-loop path with a
// pipeline window and connection churn and checks the summary accounts
// for every operation.
func TestClosedLoopPipelinedChurn(t *testing.T) {
	addr := startServer(t)
	const ops = 4000
	sum, err := Run(Config{
		Addr:       addr,
		Scenario:   scenario(t, "uniform+steady+95r5w"),
		Conns:      2,
		Ops:        ops,
		Pipeline:   4,
		ChurnEvery: 500,
		Preload:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ops != ops {
		t.Fatalf("Ops = %d, want %d", sum.Ops, ops)
	}
	if sum.Errors != 0 {
		t.Fatalf("Errors = %d", sum.Errors)
	}
	var observed uint64
	for class := range sum.Lat {
		observed += sum.Lat[class].Count()
	}
	if observed != ops {
		t.Fatalf("latency histograms hold %d observations, want %d", observed, ops)
	}
	if sum.Lat[server.ClassGet].Count() == 0 || sum.Lat[server.ClassPut].Count() == 0 {
		t.Fatal("95r5w run left a latency class empty")
	}
	if sum.OpsPerSec() <= 0 {
		t.Fatalf("OpsPerSec = %g", sum.OpsPerSec())
	}
}

// TestOpenLoopSchedulesArrivals exercises the open-loop path: the run
// must complete every op and take at least the scheduled duration
// (ops/rate), since latency is measured from the schedule.
func TestOpenLoopSchedulesArrivals(t *testing.T) {
	addr := startServer(t)
	const ops, rate = 600, 20000.0
	start := time.Now()
	sum, err := Run(Config{
		Addr:       addr,
		Scenario:   scenario(t, "uniform+steady+100r"),
		Conns:      2,
		Ops:        ops,
		RatePerSec: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ops != ops {
		t.Fatalf("Ops = %d, want %d", sum.Ops, ops)
	}
	// Each connection paces ops/2 arrivals at 2/rate spacing.
	if min := time.Duration(float64(time.Second) * (ops / 2) / (rate / 2)); time.Since(start) < min/2 {
		t.Fatalf("open loop finished in %s, faster than half the schedule %s", time.Since(start), min)
	}
}

// TestMixedOpsAgainstOracle runs a write-heavy mix with deletes and
// scans, then verifies stored values via direct reads: everything the
// generator wrote must read back as Value(key) or be absent.
func TestMixedOpsAgainstOracle(t *testing.T) {
	addr := startServer(t)
	sum, err := Run(Config{
		Addr:     addr,
		Scenario: scenario(t, "uniform+steady+25r50w15d10s"),
		Conns:    1,
		Ops:      2000,
		Pipeline: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("Errors = %d", sum.Errors)
	}
	if sum.Lat[server.ClassDel].Count() == 0 || sum.Lat[server.ClassRange].Count() == 0 {
		t.Fatal("mixed run exercised no deletes or scans")
	}
	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for key := uint64(0); key < 1<<10; key++ {
		v, ok, err := cl.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if ok && v != Value(key) {
			t.Fatalf("Get(%d) = %d, want the generator's Value %d", key, v, Value(key))
		}
	}
}

func TestPerfRecordsShape(t *testing.T) {
	cfg := Config{Scenario: scenario(t, "uniform+steady+95r5w"), Conns: 3}
	sum := &Summary{Conns: 3, Ops: 100, Elapsed: time.Second}
	for i := 0; i < 10; i++ {
		sum.Lat[server.ClassGet].Observe(uint64(1000 * (i + 1)))
	}
	recs := PerfRecords(cfg, sum, 12)
	// One populated class × three quantiles, plus throughput.
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	kinds := map[string]bool{}
	for _, r := range recs {
		kinds[r.Kind] = true
		if r.Op != "serve uniform+steady+95r5w" {
			t.Fatalf("Op = %q", r.Op)
		}
		if r.X != 3 || r.LogN != 12 {
			t.Fatalf("record coordinates: X=%g LogN=%d", r.X, r.LogN)
		}
		if r.NsPerOp <= 0 {
			t.Fatalf("NsPerOp = %g for %q", r.NsPerOp, r.Kind)
		}
	}
	for _, want := range []string{"get p50", "get p99", "get p999", "throughput"} {
		if !kinds[want] {
			t.Fatalf("missing record kind %q in %v", want, kinds)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Scenario: workload.Scenario{}}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	sc := scenario(t, "uniform+steady+100r")
	if _, err := Run(Config{Addr: "127.0.0.1:1", Scenario: sc, Ops: 10, Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}

func TestValueIsKeyDerived(t *testing.T) {
	for _, k := range []uint64{0, 1, 42, 1 << 40} {
		if Value(k) == k {
			t.Fatalf("Value(%d) not mixed", k)
		}
		if Value(k) != k^valueMixin {
			t.Fatalf("Value(%d) = %d", k, Value(k))
		}
	}
}
