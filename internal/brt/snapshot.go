package brt

import (
	"io"

	"repro/internal/core"
)

// snapshotMagic identifies the buffered repository tree's logical
// snapshot payload (see internal/core/snapshot.go): live elements in
// ascending key order, re-inserted on restore. Buffered-but-unflushed
// inserts are included like any other element (Range drains buffers),
// so contents round-trip exactly; buffer occupancy itself starts fresh.
const snapshotMagic = "BRTR"

var _ core.Snapshotter = (*Tree)(nil)

// WriteTo implements io.WriterTo (logical codec).
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, snapshotMagic, t)
}

// ReadFrom implements io.ReaderFrom; t must be empty.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, snapshotMagic, t)
}
