// Package brt implements the buffered repository tree of Buchsbaum et
// al., the cache-aware write-optimized dictionary the paper positions the
// COLA against: searches cost O(log N) block transfers and inserts cost
// amortized O((log N)/B).
//
// The tree is a (2,4)-tree whose internal nodes each carry a buffer of
// one block (B elements). Inserts append to the root's buffer; a full
// buffer is flushed by distributing its items to the children, and items
// reaching a leaf are merged into the leaf's sorted array. Every node
// charges exactly one block of the DAM space, so path walks cost one
// transfer per node, matching the structure's stated bounds.
//
// Update semantics and tombstone deletes mirror the COLA family: newer
// entries win, tombstones annihilate at the leaves.
package brt

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dam"
)

// maxFanout is the (2,4)-tree's upper bound on children per node.
const maxFanout = 4

// Options configures a Tree.
type Options struct {
	// BlockBytes sizes node buffers and leaves: each holds
	// BlockBytes / core.ElementBytes items. Defaults to 4 KiB.
	BlockBytes int64
	// Space receives DAM charges; nil disables accounting.
	Space *dam.Space
}

// item is a buffered operation or leaf element. seq orders operations on
// the same key (larger = newer); tomb marks a pending deletion.
type item struct {
	key, val, seq uint64
	tomb          bool
}

type node struct {
	leaf     bool
	parent   int32    // -1 for the root
	pivots   []uint64 // internal: len = len(children)-1; child i holds keys <= pivots[i]
	children []int32
	buffer   []item // internal: pending operations in arrival order
	elems    []item // leaf: sorted by key, distinct, no tombstones
}

// Tree is a buffered repository tree.
type Tree struct {
	opt    Options
	bufCap int
	nodes  []node
	root   int32
	height int
	n      int
	seq    uint64

	// stats carries every counter except Searches, which is atomic so
	// bracketed concurrent searches (the core.SharedReader contract:
	// Search and Range read nodes and buffers without restructuring)
	// never race Stats() readers.
	stats    core.Stats
	searches atomic.Uint64
}

var (
	_ core.Dictionary   = (*Tree)(nil)
	_ core.Deleter      = (*Tree)(nil)
	_ core.Statser      = (*Tree)(nil)
	_ core.SharedReader = (*Tree)(nil)
)

// New returns an empty buffered repository tree.
func New(opt Options) *Tree {
	if opt.BlockBytes == 0 {
		opt.BlockBytes = dam.DefaultBlockBytes
	}
	bufCap := int(opt.BlockBytes / core.ElementBytes)
	if bufCap < 4 {
		panic("brt: block too small")
	}
	return &Tree{opt: opt, bufCap: bufCap, root: -1}
}

// Len implements core.Dictionary. As in the COLA family, the count is
// exact for distinct-key workloads and after FlushAll; a key re-inserted
// while an older copy is still buffered is counted once per copy until
// the copies meet at a leaf and reconcile.
func (t *Tree) Len() int { return t.n }

// FlushAll pushes every buffered operation down to the leaves, after
// which Len is exact for any preceding workload.
func (t *Tree) FlushAll() {
	if t.root < 0 {
		return
	}
	// Flushing can split nodes; iterate until no buffers remain.
	for {
		flushed := false
		var walk func(id int32)
		walk = func(id int32) {
			nd := &t.nodes[id]
			if nd.leaf {
				return
			}
			if len(nd.buffer) > 0 {
				t.flush(id)
				flushed = true
			}
			children := append([]int32(nil), t.nodes[id].children...)
			for _, c := range children {
				// A child may have been re-parented by splits; it still
				// needs its buffer drained wherever it now lives.
				walk(c)
			}
		}
		walk(t.root)
		if !flushed {
			return
		}
	}
}

// Height reports the number of tree levels.
func (t *Tree) Height() int { return t.height }

// Stats implements core.Statser; safe concurrently with bracketed
// shared reads (Searches is loaded atomically).
func (t *Tree) Stats() core.Stats {
	st := t.stats
	st.Searches = t.searches.Load()
	return st
}

// BeginSharedReads implements core.SharedReader by opening a shared
// epoch on the owning DAM store (no-op without accounting).
func (t *Tree) BeginSharedReads() { t.opt.Space.BeginSharedReads() }

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (t *Tree) EndSharedReads() { t.opt.Space.EndSharedReads() }

func (t *Tree) alloc(leaf bool) int32 {
	t.nodes = append(t.nodes, node{leaf: leaf, parent: -1})
	return int32(len(t.nodes) - 1)
}

// touch charges a read of node id's block; dirty a write.
func (t *Tree) touch(id int32) { t.opt.Space.Read(int64(id)*t.opt.BlockBytes, t.opt.BlockBytes) }
func (t *Tree) dirty(id int32) { t.opt.Space.Write(int64(id)*t.opt.BlockBytes, t.opt.BlockBytes) }

// Insert implements core.Dictionary.
func (t *Tree) Insert(key, value uint64) {
	t.stats.Inserts++
	t.seq++
	t.insertItem(item{key: key, val: value, seq: t.seq})
	t.n++
}

// Delete implements core.Deleter via a presence check plus a tombstone.
func (t *Tree) Delete(key uint64) bool {
	t.stats.Deletes++
	if _, ok := t.Search(key); !ok {
		return false
	}
	t.seq++
	t.insertItem(item{key: key, seq: t.seq, tomb: true})
	t.n--
	return true
}

func (t *Tree) insertItem(it item) {
	if t.root < 0 {
		t.root = t.alloc(true)
		t.height = 1
	}
	if t.nodes[t.root].leaf {
		t.mergeIntoLeaf(t.root, []item{it})
		t.splitLeafWhileOver(t.root)
		return
	}
	root := &t.nodes[t.root]
	root.buffer = append(root.buffer, it)
	t.dirty(t.root)
	if len(root.buffer) >= t.bufCap {
		t.flush(t.root)
	}
}

// flush distributes node id's buffer to its children by key range,
// recursively flushing overflowing children and splitting overflowing
// leaves. Deliveries are captured as child IDs before any restructuring,
// so splits of id mid-flush cannot misroute items (a split changes a
// child's parent, never its key range).
func (t *Tree) flush(id int32) {
	nd := &t.nodes[id]
	if nd.leaf || len(nd.buffer) == 0 {
		return
	}
	t.touch(id)
	buf := nd.buffer
	nd.buffer = nil
	// Stable sort by key keeps arrival order (= seq order) within keys.
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].key < buf[j].key })
	t.stats.Moves += uint64(len(buf))

	type delivery struct {
		child int32
		items []item
	}
	parts := make([]delivery, 0, len(nd.children))
	start := 0
	for c := 0; c < len(nd.children); c++ {
		end := len(buf)
		if c < len(nd.pivots) {
			p := nd.pivots[c]
			end = start + sort.Search(len(buf)-start, func(i int) bool { return buf[start+i].key > p })
		}
		if end > start {
			parts = append(parts, delivery{child: nd.children[c], items: buf[start:end]})
		}
		start = end
	}

	for _, p := range parts {
		child := &t.nodes[p.child]
		if child.leaf {
			t.mergeIntoLeaf(p.child, p.items)
			t.splitLeafWhileOver(p.child)
		} else {
			child.buffer = append(child.buffer, p.items...)
			t.dirty(p.child)
			if len(child.buffer) >= t.bufCap {
				t.flush(p.child)
			}
		}
	}
}

// mergeIntoLeaf applies items (sorted by key, seq-ascending within key)
// to leaf id with newest-wins and tombstone annihilation; the leaf is the
// bottom, so no tombstone survives.
func (t *Tree) mergeIntoLeaf(id int32, items []item) {
	nd := &t.nodes[id]
	t.touch(id)
	out := make([]item, 0, len(nd.elems)+len(items))
	i, j := 0, 0
	for i < len(nd.elems) || j < len(items) {
		switch {
		case i >= len(nd.elems):
			out = t.appendOp(out, items[j])
			j++
		case j >= len(items):
			out = append(out, nd.elems[i])
			i++
		case nd.elems[i].key < items[j].key:
			out = append(out, nd.elems[i])
			i++
		case nd.elems[i].key > items[j].key:
			out = t.appendOp(out, items[j])
			j++
		default:
			// Operation on an existing key: the incoming op is newer.
			ex := nd.elems[i]
			i++
			op := items[j]
			j++
			if op.tomb {
				_ = ex // annihilation; Delete already adjusted the count
			} else {
				out = append(out, op)
				t.n-- // duplicate insert reconciled
			}
		}
	}
	nd.elems = out
	t.dirty(id)
	t.stats.Moves += uint64(len(out))
}

// appendOp lands a buffered operation whose key has no existing leaf
// element, resolving against earlier operations from the same batch.
func (t *Tree) appendOp(out []item, op item) []item {
	if len(out) > 0 && out[len(out)-1].key == op.key {
		prev := out[len(out)-1]
		out = out[:len(out)-1]
		if op.tomb {
			return out // real-then-tombstone within the batch: both vanish
		}
		if !prev.tomb {
			t.n--
		}
		return append(out, op)
	}
	if op.tomb {
		return out // tombstone for an absent key
	}
	return append(out, op)
}

// splitLeafWhileOver splits leaf id until it fits a block; right halves
// are recursively checked too.
func (t *Tree) splitLeafWhileOver(id int32) {
	for len(t.nodes[id].elems) > t.bufCap {
		rid := t.alloc(true)
		left := &t.nodes[id]
		right := &t.nodes[rid]
		mid := len(left.elems) / 2
		right.elems = append(right.elems, left.elems[mid:]...)
		left.elems = left.elems[:mid]
		sep := left.elems[len(left.elems)-1].key
		t.dirty(id)
		t.dirty(rid)
		t.stats.Moves += uint64(len(right.elems))
		t.attachSibling(id, rid, sep)
		t.splitLeafWhileOver(rid)
	}
}

// attachSibling inserts rid as the right sibling of id with separator
// sep (max key of id's subtree), growing a new root when id is the root.
func (t *Tree) attachSibling(id, rid int32, sep uint64) {
	p := t.nodes[id].parent
	if p < 0 {
		nr := t.alloc(false)
		root := &t.nodes[nr]
		root.pivots = append(root.pivots, sep)
		root.children = append(root.children, id, rid)
		t.nodes[id].parent = nr
		t.nodes[rid].parent = nr
		t.root = nr
		t.height++
		t.dirty(nr)
		return
	}
	pn := &t.nodes[p]
	ci := -1
	for i, c := range pn.children {
		if c == id {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic("brt: attachSibling: child not under its parent")
	}
	pn.pivots = append(pn.pivots, 0)
	copy(pn.pivots[ci+1:], pn.pivots[ci:])
	pn.pivots[ci] = sep
	pn.children = append(pn.children, 0)
	copy(pn.children[ci+2:], pn.children[ci+1:])
	pn.children[ci+1] = rid
	t.nodes[rid].parent = p
	t.dirty(p)
	t.splitInternalWhileOver(p)
}

// splitInternalWhileOver splits node id until its fanout fits,
// partitioning pivots, children (re-parenting the moved ones), and the
// buffer; the split propagates upward via attachSibling.
func (t *Tree) splitInternalWhileOver(id int32) {
	for len(t.nodes[id].children) > maxFanout {
		rid := t.alloc(false)
		left := &t.nodes[id]
		right := &t.nodes[rid]
		midIdx := len(left.children) / 2
		sep := left.pivots[midIdx-1]
		right.pivots = append(right.pivots, left.pivots[midIdx:]...)
		right.children = append(right.children, left.children[midIdx:]...)
		left.pivots = left.pivots[:midIdx-1]
		left.children = left.children[:midIdx]
		for _, c := range right.children {
			t.nodes[c].parent = rid
		}
		var lb, rb []item
		for _, it := range left.buffer {
			if it.key <= sep {
				lb = append(lb, it)
			} else {
				rb = append(rb, it)
			}
		}
		left.buffer = lb
		right.buffer = rb
		t.dirty(id)
		t.dirty(rid)
		t.stats.Moves += uint64(len(right.children) + len(rb))
		t.attachSibling(id, rid, sep)
	}
}

// Search implements core.Dictionary: walk the root-to-leaf path, checking
// each buffer (shallower entries are newer; within a buffer the largest
// seq wins), then the leaf. O(height) block transfers.
func (t *Tree) Search(key uint64) (uint64, bool) {
	t.searches.Add(1)
	if t.root < 0 {
		return 0, false
	}
	id := t.root
	for {
		nd := &t.nodes[id]
		t.touch(id)
		if nd.leaf {
			i := sort.Search(len(nd.elems), func(i int) bool { return nd.elems[i].key >= key })
			if i < len(nd.elems) && nd.elems[i].key == key {
				return nd.elems[i].val, true
			}
			return 0, false
		}
		bestSeq := uint64(0)
		var best *item
		for i := range nd.buffer {
			it := &nd.buffer[i]
			if it.key == key && it.seq >= bestSeq {
				bestSeq = it.seq
				best = it
			}
		}
		if best != nil {
			if best.tomb {
				return 0, false
			}
			return best.val, true
		}
		id = nd.children[sort.Search(len(nd.pivots), func(i int) bool { return nd.pivots[i] >= key })]
	}
}

// Range implements core.Dictionary by resolving the subtrees overlapping
// [lo, hi]: buffered operations collected along the way win over deeper
// entries by sequence number.
func (t *Tree) Range(lo, hi uint64, fn func(core.Element) bool) {
	if t.root < 0 {
		return
	}
	resolved := make(map[uint64]item)
	t.collect(t.root, lo, hi, resolved)
	keys := make([]uint64, 0, len(resolved))
	for k, it := range resolved {
		if !it.tomb {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(core.Element{Key: k, Value: resolved[k].val}) {
			return
		}
	}
}

func (t *Tree) collect(id int32, lo, hi uint64, resolved map[uint64]item) {
	nd := &t.nodes[id]
	t.touch(id)
	if nd.leaf {
		i := sort.Search(len(nd.elems), func(i int) bool { return nd.elems[i].key >= lo })
		for ; i < len(nd.elems) && nd.elems[i].key <= hi; i++ {
			it := nd.elems[i]
			if prev, ok := resolved[it.key]; !ok || it.seq > prev.seq {
				resolved[it.key] = it
			}
		}
		return
	}
	for _, it := range nd.buffer {
		if it.key < lo || it.key > hi {
			continue
		}
		if prev, ok := resolved[it.key]; !ok || it.seq > prev.seq {
			resolved[it.key] = it
		}
	}
	childLo := uint64(0)
	for c := 0; c < len(nd.children); c++ {
		childHi := ^uint64(0)
		if c < len(nd.pivots) {
			childHi = nd.pivots[c]
		}
		if childLo <= hi && childHi >= lo {
			t.collect(nd.children[c], lo, hi, resolved)
		}
		if c < len(nd.pivots) {
			if nd.pivots[c] == ^uint64(0) {
				break
			}
			childLo = nd.pivots[c] + 1
		}
	}
}
