package brt

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

// newSmall uses 256-byte blocks (8 items per buffer/leaf) to exercise
// flushes and splits quickly.
func newSmall() *Tree { return New(Options{BlockBytes: 256}) }

func TestNewDefaults(t *testing.T) {
	tr := New(Options{})
	if tr.bufCap != 128 {
		t.Fatalf("bufCap = %d, want 128", tr.bufCap)
	}
}

func TestNewPanicsTinyBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(Options{BlockBytes: 64})
}

func TestInsertSearch(t *testing.T) {
	tr := newSmall()
	const n = 3000
	seq := workload.NewRandomUnique(1)
	keys := workload.Take(seq, n)
	for i, k := range keys {
		tr.Insert(k, k^3)
		if tr.Len() != i+1 {
			t.Fatalf("Len = %d, want %d", tr.Len(), i+1)
		}
	}
	for _, k := range keys {
		if v, ok := tr.Search(k); !ok || v != k^3 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := tr.Search(uint64(1) << 63); ok {
		t.Fatal("found a missing key")
	}
	checkBRTInvariants(t, tr)
}

func TestInsertOrders(t *testing.T) {
	const n = 2000
	for name, seq := range map[string]workload.Sequence{
		"ascending":  workload.NewAscending(),
		"descending": workload.NewDescending(n),
	} {
		tr := newSmall()
		for i := 0; i < n; i++ {
			k := seq.Next()
			tr.Insert(k, k+1)
		}
		for k := uint64(0); k < n; k++ {
			if v, ok := tr.Search(k); !ok || v != k+1 {
				t.Fatalf("%s: Search(%d) = (%d,%v)", name, k, v, ok)
			}
		}
		checkBRTInvariants(t, tr)
	}
}

func TestUpdateNewestWins(t *testing.T) {
	tr := newSmall()
	tr.Insert(5, 1)
	tr.Insert(5, 2) // both may sit in the root buffer
	if v, _ := tr.Search(5); v != 2 {
		t.Fatalf("buffered update: Search(5) = %d, want 2", v)
	}
	// Push them through flushes.
	for i := uint64(100); i < 1100; i++ {
		tr.Insert(i, i)
	}
	if v, ok := tr.Search(5); !ok || v != 2 {
		t.Fatalf("after flushes: Search(5) = (%d,%v), want (2,true)", v, ok)
	}
	tr.FlushAll()
	if tr.Len() != 1001 {
		t.Fatalf("Len = %d, want 1001", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := newSmall()
	for i := uint64(0); i < 500; i++ {
		tr.Insert(i, i)
	}
	if !tr.Delete(100) {
		t.Fatal("Delete(100) failed")
	}
	if tr.Delete(100) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tr.Search(100); ok {
		t.Fatal("deleted key found")
	}
	if tr.Len() != 499 {
		t.Fatalf("Len = %d, want 499", tr.Len())
	}
	// Re-insert and churn.
	tr.Insert(100, 42)
	for i := uint64(1000); i < 2000; i++ {
		tr.Insert(i, i)
	}
	if v, ok := tr.Search(100); !ok || v != 42 {
		t.Fatalf("Search(100) = (%d,%v), want (42,true)", v, ok)
	}
	tr.FlushAll()
	if tr.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", tr.Len())
	}
}

func TestRange(t *testing.T) {
	tr := newSmall()
	for i := uint64(0); i < 1000; i += 3 {
		tr.Insert(i, i*2)
	}
	var got []uint64
	tr.Range(10, 40, func(e core.Element) bool {
		got = append(got, e.Key)
		if e.Value != e.Key*2 {
			t.Fatalf("value mismatch at %d", e.Key)
		}
		return true
	})
	want := []uint64{12, 15, 18, 21, 24, 27, 30, 33, 36, 39}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 999, func(core.Element) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRangeSeesBufferedUpdates(t *testing.T) {
	tr := newSmall()
	for i := uint64(0); i < 300; i++ {
		tr.Insert(i, 1)
	}
	tr.Insert(150, 99) // likely still buffered
	tr.Delete(151)
	var got []core.Element
	tr.Range(149, 152, func(e core.Element) bool { got = append(got, e); return true })
	if len(got) != 3 {
		t.Fatalf("Range = %v, want 3 elements", got)
	}
	if got[0].Key != 149 || got[1].Key != 150 || got[2].Key != 152 {
		t.Fatalf("Range keys = %v", got)
	}
	if got[1].Value != 99 {
		t.Fatalf("buffered update invisible to Range: %v", got[1])
	}
}

// TestSearchTransfersHeightBound: a cold BRT search reads one block per
// path node — O(log N) transfers, the BRT's defining search cost.
func TestSearchTransfersHeightBound(t *testing.T) {
	store := dam.NewStore(4096, 4096*4)
	tr := New(Options{BlockBytes: 4096, Space: store.Space("brt")})
	const n = 1 << 15
	seq := workload.NewRandomUnique(7)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	store.DropCache()
	store.ResetCounters()
	const searches = 256
	probe := workload.NewRandomUnique(7)
	for i := 0; i < searches; i++ {
		tr.Search(probe.Next())
	}
	perSearch := float64(store.Transfers()) / searches
	if perSearch > float64(tr.Height())+1 {
		t.Fatalf("cold search transfers = %v, want <= height+1 = %d", perSearch, tr.Height()+1)
	}
}

// TestInsertAmortizedTransfers: inserts amortize to O((log N)/B) because
// each flush moves a full block of items one level down.
func TestInsertAmortizedTransfers(t *testing.T) {
	store := dam.NewStore(4096, 1<<17)
	tr := New(Options{BlockBytes: 4096, Space: store.Space("brt")})
	const n = 1 << 15
	seq := workload.NewRandomUnique(8)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	perInsert := float64(store.Transfers()) / float64(n)
	// height * (1/B-ish) with slack; must be far below 1 transfer/insert.
	if perInsert > 1.0 {
		t.Fatalf("amortized transfers/insert = %v, want < 1", perInsert)
	}
}

func TestDifferential(t *testing.T) {
	tr := newSmall()
	ref := make(map[uint64]uint64)
	rng := workload.NewRNG(31)
	for i := 0; i < 15000; i++ {
		k := rng.Uint64() % 700
		switch rng.Uint64() % 4 {
		case 0, 1:
			v := rng.Uint64()
			tr.Insert(k, v)
			ref[k] = v
		case 2:
			_, want := ref[k]
			if got := tr.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 3:
			wv, wok := ref[k]
			gv, gok := tr.Search(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Search(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
	}
	tr.FlushAll()
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	// Final range scan agrees with the oracle.
	var wantKeys []uint64
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []uint64
	tr.Range(0, ^uint64(0), func(e core.Element) bool {
		gotKeys = append(gotKeys, e.Key)
		if ref[e.Key] != e.Value {
			t.Fatalf("Range value for %d = %d, want %d", e.Key, e.Value, ref[e.Key])
		}
		return true
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("Range yielded %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("Range[%d] = %d, want %d", i, gotKeys[i], wantKeys[i])
		}
	}
	checkBRTInvariants(t, tr)
}

func TestQuickInsertAllFindable(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := newSmall()
		seen := make(map[uint64]uint64)
		for i, k16 := range raw {
			k := uint64(k16)
			seen[k] = uint64(i)
			tr.Insert(k, uint64(i))
		}
		tr.FlushAll()
		if tr.Len() != len(seen) {
			return false
		}
		for k, v := range seen {
			if gv, ok := tr.Search(k); !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// checkBRTInvariants validates the (2,4)-tree structure, pivot ranges,
// buffer placement, and leaf ordering.
func checkBRTInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root < 0 {
		return
	}
	var walk func(id int32, lo, hi uint64, depth int)
	leafDepth := -1
	walk = func(id int32, lo, hi uint64, depth int) {
		nd := &tr.nodes[id]
		if nd.leaf {
			if len(nd.buffer) != 0 {
				t.Fatalf("leaf %d has a buffer", id)
			}
			if leafDepth < 0 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
			for i, e := range nd.elems {
				if e.key < lo || e.key > hi {
					t.Fatalf("leaf %d key %d outside [%d,%d]", id, e.key, lo, hi)
				}
				if i > 0 && nd.elems[i-1].key >= e.key {
					t.Fatalf("leaf %d keys out of order", id)
				}
				if e.tomb {
					t.Fatalf("leaf %d holds a tombstone", id)
				}
			}
			return
		}
		if len(nd.children) < 2 || len(nd.children) > maxFanout {
			t.Fatalf("node %d fanout %d", id, len(nd.children))
		}
		if len(nd.pivots) != len(nd.children)-1 {
			t.Fatalf("node %d: %d pivots for %d children", id, len(nd.pivots), len(nd.children))
		}
		for _, it := range nd.buffer {
			if it.key < lo || it.key > hi {
				t.Fatalf("node %d buffered key %d outside [%d,%d]", id, it.key, lo, hi)
			}
		}
		childLo := lo
		for c, cid := range nd.children {
			if tr.nodes[cid].parent != id {
				t.Fatalf("child %d of %d has parent %d", cid, id, tr.nodes[cid].parent)
			}
			childHi := hi
			if c < len(nd.pivots) {
				childHi = nd.pivots[c]
			}
			walk(cid, childLo, childHi, depth+1)
			if c < len(nd.pivots) {
				childLo = nd.pivots[c] + 1
			}
		}
	}
	walk(tr.root, 0, ^uint64(0), 1)
}
