package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/flow"
)

// ChargeamountAnalyzer checks charged accessors from the charge-amount
// side: the values passed to a charge call must be derived from the
// positions the accessor actually probes. damcharge catches uncharged
// probes (the call-site side of PR 6's synthetic-midpoint bug); this
// analyzer catches the dual — an accessor that probes accounted cells
// but feeds its charge calls constants or variables unrelated to any
// probed index, which is exactly how the midpoint chain kept the
// charge COUNT right while charging the wrong cells.
//
// An argument counts as probe-derived when, on some path reaching the
// charge (a may-analysis over the flow engine's fixpoint), it is
// derived from: an index/slice-bound expression applied to accounted
// storage or an alias of it, len/cap of accounted storage, an argument
// to or result of a call that probes accounted cells (directly or
// transitively within the package, via bottom-up call summaries), or a
// field/method of a struct that carries an //repro:accounted field
// (extent metadata such as lv.start / lv.used() — the level's own
// bookkeeping of where its cells live). A charge with no derived
// argument is still fine when its innermost enclosing loop contains a
// probe (the lockstep probe-then-charge idiom charges a constant 1 per
// probed cell), and the whole check is vacuous in accessors that never
// probe (pure charge helpers like chargeRead itself, and bulk
// extent-charging accessors validated by the extent rule).
//
// Soundness caveats (see DESIGN.md): closure bodies are not analyzed
// (they have their own CFGs; charge calls inside them are skipped),
// and a charge derived only from len() passes even when the probed
// positions are key-dependent — deriving from the probed length is the
// documented blessing for size-proportional bulk charges.
var ChargeamountAnalyzer = &analysis.Analyzer{
	Name:       "chargeamount",
	Doc:        "charge-call arguments in a charged accessor must derive from probed positions",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: waiverUsageType,
	Run:        runChargeamount,
}

func runChargeamount(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	accounted := markedFields(pass, verbAccounted)
	if len(accounted) == 0 {
		return dirs.usage, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	g := flow.PackageGraph(pass)

	// checked: declared accessors that own their charging. caller:
	// accessors and undeclared functions are damcharge's concern.
	var checked []*types.Func
	for _, fn := range g.Funcs() {
		if args, ok := funcDirective(g.Decls[fn], verbCharges); ok && !strings.HasPrefix(args, "caller:") {
			checked = append(checked, fn)
		}
	}

	// probers: which package functions probe accounted storage, closed
	// transitively over same-package calls. A call to a prober is probe
	// evidence at the call site — its arguments are probed positions
	// and its results are derived from them.
	probers := flow.Summaries(g, func(a, b bool) bool { return a == b },
		func(fn *types.Func, fd *ast.FuncDecl, get func(*types.Func) (bool, bool)) bool {
			if probesDirectly(pass, fd, accounted) {
				return true
			}
			for _, c := range g.CalleesOf(fn) {
				if hit, ok := get(c); ok && hit {
					return true
				}
			}
			return false
		})

	for _, fn := range checked {
		fd := g.Decls[fn]
		if cg := cfgs.FuncDecl(fd); cg != nil {
			checkChargeAmounts(pass, fd, cg, accounted, probers, dirs)
		}
	}
	return dirs.usage, nil
}

// probesDirectly reports whether fd's body (closures included —
// probing inside a closure is still this function probing) indexes,
// ranges over, or copies accounted storage or a local alias of it.
func probesDirectly(pass *analysis.Pass, fd *ast.FuncDecl, accounted map[types.Object]bool) bool {
	taint := make(map[types.Object]bool)
	reaches := func(e ast.Expr) bool {
		return selectsMarked(pass, e, accounted) || selectsMarked(pass, e, taint)
	}
	// Collect aliases first (textual order suffices for the tree's
	// alias-then-probe idiom), then look for probes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && reaches(rhs) && !freshAlloc(pass, rhs) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						taint[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						taint[obj] = true
					}
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.IndexExpr:
			if reaches(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if n.X != nil && reaches(n.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "copy" || id.Name == "append") {
					for _, arg := range n.Args {
						if reaches(arg) {
							found = true
							break
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// amtState is the abstract state of the charge-amount analysis: which
// locals alias accounted storage, and which locals hold probe-derived
// values.
type amtState struct {
	alias   map[types.Object]bool
	derived map[types.Object]bool
}

type amtLattice struct {
	pass      *analysis.Pass
	accounted map[types.Object]bool
	// rangeSeed maps the Key/Value ident nodes of every range statement
	// in the function to the ranged expression (cfg stores them as bare
	// expression nodes, so the range structure must be recovered here).
	rangeSeed map[ast.Node]ast.Expr
	// rangeX marks the ranged expressions themselves: ranging over
	// accounted storage is a (bulk) probe site.
	rangeX map[ast.Node]bool
	// probeCall reports whether a call probes accounted cells (a static
	// same-package callee with a probing summary).
	probeCall func(*ast.CallExpr) bool
	// hasAccounted caches the extent-metadata test per struct type.
	hasAccounted map[types.Type]bool
}

func (amtLattice) Entry() amtState {
	return amtState{alias: map[types.Object]bool{}, derived: map[types.Object]bool{}}
}

func (amtLattice) Clone(s amtState) amtState {
	c := amtState{alias: make(map[types.Object]bool, len(s.alias)), derived: make(map[types.Object]bool, len(s.derived))}
	for k := range s.alias {
		c.alias[k] = true
	}
	for k := range s.derived {
		c.derived[k] = true
	}
	return c
}

func (l amtLattice) Join(a, b amtState) amtState {
	j := l.Clone(a)
	for k := range b.alias {
		j.alias[k] = true
	}
	for k := range b.derived {
		j.derived[k] = true
	}
	return j
}

func (amtLattice) Equal(a, b amtState) bool {
	if len(a.alias) != len(b.alias) || len(a.derived) != len(b.derived) {
		return false
	}
	for k := range a.alias {
		if !b.alias[k] {
			return false
		}
	}
	for k := range a.derived {
		if !b.derived[k] {
			return false
		}
	}
	return true
}

// reaches reports whether e reads accounted storage or an alias.
func (l amtLattice) reaches(s amtState, e ast.Expr) bool {
	return selectsMarked(l.pass, e, l.accounted) || selectsMarked(l.pass, e, s.alias)
}

// extentOf reports whether e selects a field or method of a struct
// that itself carries an //repro:accounted field — the structure's own
// extent metadata (lv.start, lv.used(), c.levels[t].start).
func (l amtLattice) extentOf(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := l.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if hit, cached := l.hasAccounted[t]; cached {
		return hit
	}
	hit := false
	u := t
	if p, ok := u.Underlying().(*types.Pointer); ok {
		u = p.Elem()
	}
	if st, ok := u.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if l.accounted[st.Field(i)] {
				hit = true
				break
			}
		}
	}
	l.hasAccounted[t] = hit
	return hit
}

// exprDerived reports whether e is probe-derived in state s: it
// contains a derived local, len/cap of accounted storage, a probing
// call, or extent metadata of an accounted-bearing struct.
func (l amtLattice) exprDerived(s amtState, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if s.derived[l.pass.TypesInfo.Uses[n]] {
				found = true
			}
		case *ast.SelectorExpr:
			if l.extentOf(n) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if _, isBuiltin := l.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 && l.reaches(s, n.Args[0]) {
					found = true
					return false
				}
			}
			if l.probeCall(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// seedProbes marks probe positions found anywhere in n as derived:
// idents inside index/slice-bound expressions over accounted storage,
// and arguments of probing calls. When sites is non-nil, the position
// of every probe found is appended (the reporting pass's evidence and
// co-location set).
func (l amtLattice) seedProbes(s amtState, n ast.Node, sites *[]token.Pos) {
	markIdents := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := l.pass.TypesInfo.Uses[id]; obj != nil {
					s.derived[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		switch m := m.(type) {
		case *ast.IndexExpr:
			if l.reaches(s, m.X) {
				markIdents(m.Index)
				if sites != nil {
					*sites = append(*sites, m.Pos())
				}
			}
		case *ast.SliceExpr:
			if l.reaches(s, m.X) {
				markIdents(m.Low)
				markIdents(m.High)
				markIdents(m.Max)
				if sites != nil {
					*sites = append(*sites, m.Pos())
				}
			}
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok {
				if _, isBuiltin := l.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "copy" || id.Name == "append") {
					for _, arg := range m.Args {
						if l.reaches(s, arg) {
							if sites != nil {
								*sites = append(*sites, m.Pos())
							}
							break
						}
					}
					return true
				}
			}
			if l.probeCall(m) {
				for _, arg := range m.Args {
					markIdents(arg)
				}
				if sites != nil {
					*sites = append(*sites, m.Pos())
				}
			}
		}
		return true
	})
}

func (l amtLattice) Transfer(s amtState, n ast.Node) amtState {
	// Probe seeds first: sub-expressions are evaluated before any
	// assignment they feed takes effect.
	l.seedProbes(s, n, nil)
	if x, isRangeVar := l.rangeSeed[n]; isRangeVar {
		if l.reaches(s, x) {
			if id, ok := n.(*ast.Ident); ok {
				if obj := l.pass.TypesInfo.Defs[id]; obj != nil {
					s.derived[obj] = true
				} else if obj := l.pass.TypesInfo.Uses[id]; obj != nil {
					s.derived[obj] = true
				}
			}
		}
		return s
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		l.transferAssign(s, n)
	case *ast.ValueSpec:
		for i, name := range n.Names {
			var rhs ast.Expr
			if i < len(n.Values) {
				rhs = n.Values[i]
			} else if len(n.Values) == 1 {
				rhs = n.Values[0] // multi-value: conservative, same expr
			}
			l.assignTo(s, name, rhs, false)
		}
	}
	return s
}

func (l amtLattice) transferAssign(s amtState, as *ast.AssignStmt) {
	opAssign := as.Tok != token.ASSIGN && as.Tok != token.DEFINE
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value form: x, y := f(...). Derived iff f probes.
		rhs := as.Rhs[0]
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				l.assignTo(s, id, rhs, opAssign)
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok {
			l.assignTo(s, id, rhs, opAssign)
		}
		// Non-ident LHS (data[j] = v): the index probe was already
		// seeded by seedProbes; no local changes state.
	}
}

// assignTo applies one ident-LHS assignment: strong update (plain
// assignment kills stale facts) with alias and derived gen. Op-assigns
// (x += e) keep existing facts.
func (l amtLattice) assignTo(s amtState, id *ast.Ident, rhs ast.Expr, opAssign bool) {
	if id.Name == "_" {
		return
	}
	obj := l.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = l.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	aliasGen := rhs != nil && aliasableType(l.pass.TypesInfo.TypeOf(rhs)) && l.reaches(s, rhs) && !freshAlloc(l.pass, rhs)
	derGen := rhs != nil && l.exprDerived(s, rhs)
	if !opAssign {
		delete(s.alias, obj)
		delete(s.derived, obj)
	}
	if aliasGen {
		s.alias[obj] = true
	}
	if derGen {
		s.derived[obj] = true
	}
}

// aliasableType mirrors damcharge: only reference-like values carry an
// alias of accounted storage.
func aliasableType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Array:
		return true
	}
	return false
}

func checkChargeAmounts(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG, accounted map[types.Object]bool, probers map[*types.Func]bool, dirs *dirIndex) {
	lat := amtLattice{
		pass:         pass,
		accounted:    accounted,
		rangeSeed:    make(map[ast.Node]ast.Expr),
		rangeX:       make(map[ast.Node]bool),
		hasAccounted: make(map[types.Type]bool),
	}
	lat.probeCall = func(call *ast.CallExpr) bool {
		if name := calleeName(call); chargeCallNames[name] {
			return false // charging is not probing
		}
		fn := flow.StaticCallee(pass.TypesInfo, call)
		return fn != nil && probers[fn]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if rs.Key != nil {
				lat.rangeSeed[rs.Key] = rs.X
			}
			if rs.Value != nil {
				lat.rangeSeed[rs.Value] = rs.X
			}
			lat.rangeX[rs.X] = true
		}
		return true
	})

	res := flow.Forward[amtState](g, lat)

	// Reporting pass: collect probe evidence and underived charges.
	type candidate struct {
		call *ast.CallExpr
		name string
	}
	var sites []token.Pos
	var cands []candidate
	res.Walk(func(_ *cfg.Block, n ast.Node, before amtState) {
		lat.seedProbes(before, n, &sites)
		if lat.rangeX[n] {
			if x, isExpr := n.(ast.Expr); isExpr && lat.reaches(before, x) {
				sites = append(sites, n.Pos())
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !chargeCallNames[name] {
				return true
			}
			ok = false
			for _, arg := range call.Args {
				if lat.exprDerived(before, arg) {
					ok = true
					break
				}
			}
			if !ok {
				cands = append(cands, candidate{call, name})
			}
			return true
		})
	})
	if len(sites) == 0 {
		return // accessor never probes here: nothing to co-derive from
	}
	probeWithin := func(lo, hi token.Pos) bool {
		for _, p := range sites {
			if p >= lo && p < hi {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		if loop := enclosingLoop(fd, c.call.Pos()); loop != nil && probeWithin(loop.Pos(), loop.End()) {
			continue // lockstep probe-then-charge inside one loop
		}
		if dirs.allowed("chargeamount", c.call.Pos(), fd.Doc) {
			continue
		}
		pass.Reportf(c.call.Pos(),
			"charge call %s derives from no probed index: %s probes accounted cells elsewhere (PR 6 midpoint-chain shape — charge the positions actually probed)",
			c.name, fd.Name.Name)
	}
}

// calleeName is the bare selector or ident name of a call's function.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// enclosingLoop returns the innermost for/range statement containing
// pos, excluding loops inside function literals.
func enclosingLoop(fd *ast.FuncDecl, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return !(pos >= n.Pos() && pos < n.End())
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if pos >= n.Pos() && pos < n.End() {
				best = n.(ast.Stmt)
			}
		}
		return true
	})
	return best
}
