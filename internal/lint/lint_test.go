package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over its hermetic testdata package (flagged and
// clean cases side by side) plus, where one exists, the regression
// package reproducing a bug this repo actually shipped.

func TestDamcharge(t *testing.T) {
	linttest.Run(t, "testdata", lint.DamchargeAnalyzer, "damcharge")
}

// TestDamchargeMidpointChain replays PR 6's hypothesis experiment E13:
// a binary search that charged a synthetic, key-independent midpoint
// chain while probing real cells. The probe path is not a declared
// accessor, so damcharge fails it.
func TestDamchargeMidpointChain(t *testing.T) {
	linttest.Run(t, "testdata", lint.DamchargeAnalyzer, "histdam")
}

func TestRlockpure(t *testing.T) {
	linttest.Run(t, "testdata", lint.RlockpureAnalyzer, "rlockpure")
}

// TestRlockpureSyncdictRace replays PR 5's pre-fix syncdict: plain
// counter increments on the RLock fast path.
func TestRlockpureSyncdictRace(t *testing.T) {
	linttest.Run(t, "testdata", lint.RlockpureAnalyzer, "histrlock")
}

func TestBracketbalance(t *testing.T) {
	linttest.Run(t, "testdata", lint.BracketAnalyzer, "bracketbalance")
}

func TestScratchescape(t *testing.T) {
	linttest.Run(t, "testdata", lint.ScratchescapeAnalyzer, "scratchescape")
}

func TestChargeamount(t *testing.T) {
	linttest.Run(t, "testdata", lint.ChargeamountAnalyzer, "chargeamount")
}

// TestChargeamountMidpointChain replays PR 6's E13 repro from the
// charge-amount side: the synthetic midpoint stream derives from no
// probed position, so chargeamount re-catches the bug even where the
// call-site rule (histdam) is satisfied by restructuring.
func TestChargeamountMidpointChain(t *testing.T) {
	linttest.Run(t, "testdata", lint.ChargeamountAnalyzer, "histamount")
}

func TestBracketflow(t *testing.T) {
	linttest.Run(t, "testdata", lint.BracketflowAnalyzer, "bracketflow")
}

func TestDurerr(t *testing.T) {
	linttest.Run(t, "testdata", lint.DurerrAnalyzer, "wal")
}

func TestDirectiveSyntax(t *testing.T) {
	linttest.Run(t, "testdata", lint.DirectiveAnalyzer, "reprodirective")
}
