package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RlockpureAnalyzer enforces the mutation-free-accessor invariant:
// code holding only the read side of an RWMutex, or running inside a
// shared-read epoch, or belonging to a method declared
// //repro:readonly, must not mutate the receiver non-atomically.
// Flagged inside such regions: assignments and ++/-- on receiver
// fields (including map entries), and calls to same-package methods
// that are known to mutate their receiver. Atomic counters
// (atomic.Uint64 and friends) mutate through method calls and pass.
// This is the analyzer that would have caught PR 5's pre-fix syncdict,
// which bumped a plain counter under RLock.
var RlockpureAnalyzer = &analysis.Analyzer{
	Name:       "rlockpure",
	Doc:        "no receiver mutation under RLock, inside shared-read epochs, or in //repro:readonly methods",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: waiverUsageType,
	Run:        runRlockpure,
}

// readRegionPairs maps a region-opening call name to its closer.
var readRegionPairs = map[string]string{
	"RLock":            "RUnlock",
	"BeginSharedReads": "EndSharedReads",
}

func runRlockpure(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	mutators := collectMutators(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		recv := receiverObject(pass, fd)
		if _, ok := funcDirective(fd, verbReadonly); ok {
			checkPure(pass, fd, fd.Body.List, recv, mutators, dirs,
				fmt.Sprintf("//repro:readonly method %s", fd.Name.Name))
		}
		findReadRegions(pass, fd, recv, mutators, dirs)
	})
	return dirs.usage, nil
}

// collectMutators maps "Type.Method" to true for every method of the
// package that writes a receiver field directly, closed transitively
// over same-type method calls (a method calling a mutator mutates).
func collectMutators(pass *analysis.Pass) map[string]bool {
	type methodInfo struct {
		writes bool
		calls  []string // "Type.Method" callees on the receiver
	}
	infos := make(map[string]methodInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverObject(pass, fd)
			if recv == nil {
				continue
			}
			key := methodKey(pass, fd)
			info := methodInfo{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if rootedAt(pass, lhs, recv) {
							info.writes = true
						}
					}
				case *ast.IncDecStmt:
					if rootedAt(pass, n.X, recv) {
						info.writes = true
					}
				case *ast.CallExpr:
					if callee := methodCallee(pass, n); callee != "" {
						if sel, ok := n.Fun.(*ast.SelectorExpr); ok && rootedAt(pass, sel.X, recv) {
							info.calls = append(info.calls, callee)
						}
					}
				}
				return true
			})
			infos[key] = info
		}
	}
	mutators := make(map[string]bool)
	for key, info := range infos {
		if info.writes {
			mutators[key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, info := range infos {
			if mutators[key] {
				continue
			}
			for _, callee := range info.calls {
				if mutators[callee] {
					mutators[key] = true
					changed = true
					break
				}
			}
		}
	}
	return mutators
}

// methodKey is "Type.Method" for a method declaration.
func methodKey(pass *analysis.Pass, fd *ast.FuncDecl) string {
	obj := pass.TypesInfo.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return fd.Name.Name
	}
	return funcKey(fn)
}

// methodCallee resolves a call to "Type.Method" for same-package
// method callees; "" otherwise.
func methodCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return ""
	}
	if fn.Signature().Recv() == nil {
		return ""
	}
	return funcKey(fn)
}

// funcKey is "Type.Method" with pointers stripped from the receiver.
func funcKey(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// findReadRegions locates RLock/RUnlock and Begin/EndSharedReads
// brackets in every statement list of the function and purity-checks
// the statements between them. A deferred closer extends the region to
// the end of the enclosing list.
func findReadRegions(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, mut map[string]bool, dirs *dirIndex) {
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if closer, recvStr, ok := regionOpen(stmt); ok {
				end := len(stmts)
				for j := i + 1; j < len(stmts); j++ {
					if isCloser(stmts[j], closer, recvStr) {
						// A direct closer ends the region; a deferred one
						// holds the lock until the function returns, so the
						// region runs to the end of the list.
						if _, isDefer := stmts[j].(*ast.DeferStmt); !isDefer {
							end = j
						}
						break
					}
				}
				checkPure(pass, fd, stmts[i+1:end], recv, mut, dirs,
					fmt.Sprintf("shared-read region (%s held)", recvStr))
			}
			// Recurse into nested blocks so brackets opened inside an if
			// or loop body get their own region.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok && n != stmt {
					walk(b.List)
					return false
				}
				return true
			})
		}
	}
	walk(fd.Body.List)
}

// regionOpen reports whether stmt opens a read region: a call
// x.RLock() or x.BeginSharedReads(). It returns the closer name and
// the receiver expression string.
func regionOpen(stmt ast.Stmt) (closer, recvStr string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	c, known := readRegionPairs[sel.Sel.Name]
	if !known {
		return "", "", false
	}
	return c, types.ExprString(sel.X), true
}

// isCloser reports whether stmt is x.<closer>() — directly or in a
// defer — for the same receiver expression.
func isCloser(stmt ast.Stmt, closer, recvStr string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == closer && types.ExprString(sel.X) == recvStr
}

// checkPure flags non-atomic receiver mutation in the given statements.
func checkPure(pass *analysis.Pass, fd *ast.FuncDecl, stmts []ast.Stmt, recv types.Object, mutators map[string]bool, dirs *dirIndex, where string) {
	if recv == nil {
		return
	}
	report := func(n ast.Node, format string, args ...any) {
		if dirs.allowed("rlockpure", n.Pos(), fd.Doc) {
			return
		}
		pass.Reportf(n.Pos(), format+" in %s", append(args, where)...)
	}
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if rootedAt(pass, lhs, recv) {
						report(n, "receiver field %s written non-atomically", types.ExprString(lhs))
					}
				}
			case *ast.IncDecStmt:
				if rootedAt(pass, n.X, recv) {
					report(n, "receiver field %s mutated non-atomically", types.ExprString(n.X))
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if callee := methodCallee(pass, n); callee != "" && mutators[callee] && rootedAt(pass, sel.X, recv) {
					report(n, "call to mutating method %s", callee)
				}
			}
			return true
		})
	}
}
