package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// BracketAnalyzer enforces the bracket-balance invariant: every
// acquire — RLock, Lock, or a Begin* bracket such as BeginSharedReads —
// is matched by its release on every control-flow path from the
// acquire to a return. A deferred release (direct or inside a deferred
// closure) satisfies every path, including panics; without one, any
// early return that skips the release is a finding. Matching is by
// receiver expression, so s.mu.RLock() paired with other.mu.RUnlock()
// does not balance.
//
// Functions that are themselves part of the bracket machinery — named
// Begin*, Lock, or RLock, such as a wrapper's forwarding
// BeginSharedReads — are deliberately unbalanced and are skipped.
var BracketAnalyzer = &analysis.Analyzer{
	Name:       "bracketbalance",
	Doc:        "every RLock/Lock/Begin* acquire must release on all control-flow paths",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: waiverUsageType,
	Run:        runBracket,
}

// releaseFor maps an acquire call name to its release; Begin* pairs
// generically with End*.
func releaseFor(name string) (string, bool) {
	switch name {
	case "RLock":
		return "RUnlock", true
	case "Lock":
		return "Unlock", true
	}
	if rest, ok := strings.CutPrefix(name, "Begin"); ok && rest != "" {
		return "End" + rest, true
	}
	return "", false
}

func runBracket(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, isForwarder := releaseFor(fd.Name.Name); isForwarder {
				continue
			}
			g := cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			checkBrackets(pass, fd, g, dirs)
		}
	}
	return dirs.usage, nil
}

// bracketCall matches x.<name>() calls; it returns the receiver
// expression string.
func bracketCall(n ast.Node) (name, recvStr string, call *ast.CallExpr) {
	c, ok := n.(*ast.CallExpr)
	if !ok {
		return "", "", nil
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	return sel.Sel.Name, types.ExprString(sel.X), c
}

func checkBrackets(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG, dirs *dirIndex) {
	// Deferred releases cover every path (including panics) from the
	// moment the defer is registered; since acquire-then-defer is the
	// only idiom in the tree, treat any deferred release as covering
	// the matching acquire.
	deferred := make(map[string]bool) // "release/recv"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if name, recv, c := bracketCall(d.Call); c != nil {
			deferred[name+"/"+recv] = true
		}
		// A deferred closure releasing inside covers all paths too.
		if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if name, recv, c := bracketCall(m); c != nil {
					deferred[name+"/"+recv] = true
				}
				return true
			})
		}
		return true
	})

	// Locate acquires inside CFG blocks and walk successors. Closure
	// bodies have their own CFG and are not scanned against this one.
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				name, recv, call := bracketCall(n)
				if call == nil {
					return true
				}
				release, isAcquire := releaseFor(name)
				if !isAcquire || deferred[release+"/"+recv] {
					return true
				}
				if leak, exit := pathWithoutRelease(b, i, release, recv); leak {
					if dirs.allowed("bracketbalance", call.Pos(), fd.Doc) {
						return true
					}
					extra := ""
					if exit != nil {
						extra = " (unreleased path reaches the return at " +
							pass.Fset.Position(exit.Pos()).String() + ")"
					}
					pass.Reportf(call.Pos(),
						"%s.%s() is not matched by %s on every path to return%s",
						recv, name, release, extra)
				}
				return true
			})
		}
	}
}

// pathWithoutRelease reports whether some path from just after the
// acquire (block b, node index i) reaches a function exit without
// passing a matching release call, along with the leaking return
// statement when one is identifiable.
func pathWithoutRelease(b *cfg.Block, i int, release, recv string) (bool, ast.Node) {
	releasesIn := func(nodes []ast.Node) bool {
		for _, n := range nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if found {
					return false
				}
				if name, r, c := bracketCall(m); c != nil && name == release && r == recv {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	if releasesIn(b.Nodes[i+1:]) {
		return false, nil
	}
	if len(b.Succs) == 0 {
		return true, retOrNil(b)
	}
	seen := map[*cfg.Block]bool{}
	var dfs func(blk *cfg.Block) (bool, ast.Node)
	dfs = func(blk *cfg.Block) (bool, ast.Node) {
		if seen[blk] {
			return false, nil
		}
		seen[blk] = true
		if releasesIn(blk.Nodes) {
			return false, nil
		}
		if len(blk.Succs) == 0 {
			return true, retOrNil(blk)
		}
		for _, s := range blk.Succs {
			if leak, at := dfs(s); leak {
				return true, at
			}
		}
		return false, nil
	}
	for _, s := range b.Succs {
		if leak, at := dfs(s); leak {
			return true, at
		}
	}
	return false, nil
}

// retOrNil avoids a typed-nil ast.Node when a no-successor block is
// not a return block (e.g. falls off the end of the function).
func retOrNil(b *cfg.Block) ast.Node {
	if r := b.Return(); r != nil {
		return r
	}
	return nil
}
