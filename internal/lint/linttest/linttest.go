// Package linttest is an offline analysistest equivalent: it loads
// GOPATH-style packages from a testdata/src tree, type-checks them
// against stub dependencies in the same tree (never the real standard
// library, so the tests are hermetic), runs an analyzer with its
// Requires closure, and matches reported diagnostics against
// analysistest-style "// want" comments.
//
// The real golang.org/x/tools/go/analysis/analysistest needs
// go/packages and a `go list` invocation per test; this harness trades
// that generality for zero subprocesses and zero network, which is
// what this repo's build environment requires.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named package from dir/src, runs a (and its Requires
// closure) over it, and verifies the diagnostics against // want
// comments in that package's files. Stub dependency packages (sync,
// os, ...) live in the same tree and are loaded on demand.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgpaths {
		pi, err := l.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, err := l.run(a, pi)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, l.fset, pi.files, diags)
	}
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	srcdir string
	fset   *token.FileSet
	pkgs   map[string]*pkgInfo
	// facts is a process-wide store standing in for the serialized
	// fact files a real driver maintains; keyed by object/package plus
	// concrete fact type.
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

func newLoader(srcdir string) *loader {
	return &loader{
		srcdir:   srcdir,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*pkgInfo),
		objFacts: make(map[objFactKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
	}
}

// Import implements types.Importer by loading the stub package from
// the testdata tree.
func (l *loader) Import(path string) (*types.Package, error) {
	pi, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pi.pkg, nil
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("no stub or test package for import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %q has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

// run executes a and its Requires closure over pi, returning only the
// diagnostics of a itself (dependency diagnostics are discarded, as
// the real driver does for required-but-not-requested analyzers).
func (l *loader) run(a *analysis.Analyzer, pi *pkgInfo) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	var exec func(x *analysis.Analyzer) error
	exec = func(x *analysis.Analyzer) error {
		if _, done := results[x]; done {
			return nil
		}
		for _, dep := range x.Requires {
			if err := exec(dep); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   x,
			Fset:       l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if x == a {
					diags = append(diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				stored, ok := l.objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				}
				return ok
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				l.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = fact
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				stored, ok := l.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				}
				return ok
			},
			ExportPackageFact: func(fact analysis.Fact) {
				l.pkgFacts[pkgFactKey{pi.pkg, reflect.TypeOf(fact)}] = fact
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for k, f := range l.objFacts {
					out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for k, f := range l.pkgFacts {
					out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
				}
				return out
			},
		}
		res, err := x.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", x.Name, err)
		}
		results[x] = res
		return nil
	}
	if err := exec(a); err != nil {
		return nil, err
	}
	return diags, nil
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// checkWants cross-checks diagnostics against // want comments: every
// diagnostic must match a want on its line, and every want must be
// matched by some diagnostic.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				pats, above := parseWant(c.Text)
				line := pos.Line
				if above {
					line--
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: line, re: re, text: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." \`...\“
// comment; non-want comments yield nil. The `// want-above` variant
// anchors the expectation to the previous source line — needed when
// the diagnostic is on a full-line directive comment, which cannot
// share its line with a second comment.
func parseWant(text string) (pats []string, above bool) {
	trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, ok := strings.CutPrefix(trimmed, "want-above ")
	if ok {
		above = true
	} else if rest, ok = strings.CutPrefix(trimmed, "want "); !ok {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return pats, above
			}
			if s, err := strconv.Unquote(rest[:end+1]); err == nil {
				pats = append(pats, s)
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return pats, above
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return pats, above
		}
	}
	return pats, above
}
