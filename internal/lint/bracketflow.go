package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/flow"
)

// BracketflowAnalyzer tracks bracket balance — RLock/RUnlock,
// Lock/Unlock, Begin*/End* — as dataflow facts: per bracket key (the
// receiver expression plus its release name), the set of balances
// possible at each program point. It complements bracketbalance's
// per-acquire path walk with the two shapes that walk cannot express:
//
//   - Loop leaks: an acquire whose release is skipped on the back edge
//     accumulates balance; the analyzer reports the acquire the moment
//     a prior balance may still be outstanding.
//   - Conditionally-acquiring helpers: a same-package helper whose net
//     bracket effect is not zero gets a bottom-up summary (the set of
//     possible deltas per bracket key, rewritten to the caller's
//     receiver expression at the call site), so a caller that fails to
//     release on some path is caught even though the acquire is hidden
//     inside the helper.
//
// A deferred release — direct or inside a deferred closure — is
// credited where the defer is registered, since it covers every
// subsequent path including panics. Functions that are themselves
// bracket machinery (named Begin*, End*, Lock, Unlock, RLock, RUnlock)
// are skipped and get no summary: a call to them IS the primitive
// acquire/release. Net-negative functions (release-only helpers) are
// not reported — over-release is a run-time panic the tests catch —
// but their summaries still debit callers.
var BracketflowAnalyzer = &analysis.Analyzer{
	Name:       "bracketflow",
	Doc:        "bracket balance (RLock/Lock/Begin*) tracked as dataflow facts across loops and helper calls",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: waiverUsageType,
	Run:        runBracketflow,
}

// balSet is a set of possible balances for one bracket key, encoded as
// a bitmask: bit 0 ↔ balance -1 (clamped floor), bits 1..4 ↔ balances
// 0..3, bit 5 ↔ "4 or more" (clamped ceiling, only reachable in
// runaway loops).
type balSet uint8

const (
	balFloor balSet = 1 << 0 // -1 or less
	balZero  balSet = 1 << 1
	balCeil  balSet = 1 << 5 // +4 or more
	balPos   balSet = 0b111100
)

// shift moves every balance in the set by delta, clamping at the
// floor and ceiling.
func (b balSet) shift(delta int) balSet {
	var out balSet
	for bit := 0; bit < 6; bit++ {
		if b&(1<<bit) == 0 {
			continue
		}
		n := bit + delta
		switch {
		case n <= 0:
			out |= balFloor
		case n >= 5:
			out |= balCeil
		default:
			out |= 1 << n
		}
	}
	return out
}

// bkey identifies one bracket: the receiver expression as printed
// (s.mu) plus the release name (RUnlock), so s.mu.RLock and
// s.other.RLock stay distinct.
type bkey struct {
	recv    string
	release string
}

// bfState maps bracket keys to possible balances. Missing key ≡
// {balance 0}.
type bfState map[bkey]balSet

// bfSummary is a helper's net bracket effect on keys rooted at its
// receiver or parameters: slot → path remainder → release → delta set
// (as a balSet around zero).
type bfSummary map[bfSumKey]balSet

type bfSumKey struct {
	slot    int    // 0 = receiver, 1.. = parameters
	path    string // selector remainder, e.g. ".mu"
	release string
}

func bfSummaryEqual(a, b bfSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// bracketMachinery reports whether a function is itself part of the
// bracket vocabulary; calls to it are primitives, and its own
// (deliberate) imbalance is not a finding.
func bracketMachinery(name string) bool {
	if _, isAcquire := releaseFor(name); isAcquire {
		return true
	}
	if name == "Unlock" || name == "RUnlock" {
		return true
	}
	rest, ok := strings.CutPrefix(name, "End")
	return ok && rest != ""
}

// isReleaseName reports whether name closes some bracket.
func isReleaseName(name string) bool {
	if name == "Unlock" || name == "RUnlock" {
		return true
	}
	rest, ok := strings.CutPrefix(name, "End")
	return ok && rest != ""
}

func runBracketflow(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	g := flow.PackageGraph(pass)

	bc := &bfCtx{pass: pass, cfgs: cfgs}

	// Bottom-up summaries: net bracket deltas of non-machinery helpers
	// on receiver/parameter-rooted keys.
	bc.summaries = flow.Summaries(g, bfSummaryEqual,
		func(fn *types.Func, fd *ast.FuncDecl, get func(*types.Func) (bfSummary, bool)) bfSummary {
			if bracketMachinery(fd.Name.Name) {
				return bfSummary{}
			}
			bc.get = get
			return bc.summarize(fd)
		})
	bc.get = func(fn *types.Func) (bfSummary, bool) { s, ok := bc.summaries[fn]; return s, ok }

	for _, fn := range g.Funcs() {
		fd := g.Decls[fn]
		if bracketMachinery(fd.Name.Name) {
			continue
		}
		bc.check(fd, dirs)
	}
	return dirs.usage, nil
}

type bfCtx struct {
	pass      *analysis.Pass
	cfgs      *ctrlflow.CFGs
	summaries map[*types.Func]bfSummary
	get       func(*types.Func) (bfSummary, bool)
}

type bfLattice struct {
	bc *bfCtx
}

func (bfLattice) Entry() bfState { return bfState{} }

func (bfLattice) Clone(s bfState) bfState {
	c := make(bfState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (l bfLattice) Join(a, b bfState) bfState {
	j := l.Clone(a)
	for k, v := range b {
		if cur, ok := j[k]; ok {
			j[k] = cur | v
		} else {
			j[k] = balZero | v // absent ≡ {0}
		}
	}
	for k, v := range j {
		if _, ok := b[k]; !ok {
			j[k] = v | balZero
		}
	}
	return j
}

func (bfLattice) Equal(a, b bfState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (s bfState) get(k bkey) balSet {
	if v, ok := s[k]; ok {
		return v
	}
	return balZero
}

// apply shifts key k by every delta in deltas (a balSet around zero:
// balZero means "no change possible", bit 2 means "+1 possible", the
// floor bit means "-1 possible").
func (s bfState) apply(k bkey, deltas balSet) {
	cur := s.get(k)
	var out balSet
	for bit := 0; bit < 6; bit++ {
		if deltas&(1<<bit) == 0 {
			continue
		}
		out |= cur.shift(bit - 1)
	}
	if out != 0 {
		s[k] = out
	}
}

// bracketEvents walks one CFG node (closures excluded — they have
// their own frames) and invokes acquire/release/summary callbacks in
// syntactic order. Deferred releases count at registration.
func (bc *bfCtx) bracketEvents(n ast.Node,
	onAcquire func(k bkey, call *ast.CallExpr),
	onRelease func(k bkey, call *ast.CallExpr),
	onSummary func(sum bfSummary, call *ast.CallExpr),
) {
	var visit func(m ast.Node, inDefer bool)
	visit = func(m ast.Node, inDefer bool) {
		ast.Inspect(m, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// The deferred call's releases are credited here; a
				// deferred closure's releases too. Acquire-in-defer is
				// nonsense the event order surfaces naturally.
				visit(x.Call, true)
				if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
					visit(fl.Body, true)
				}
				return false
			case *ast.CallExpr:
				if name, recv, call := bracketCall(x); call != nil {
					if release, isAcquire := releaseFor(name); isAcquire {
						if !inDefer {
							onAcquire(bkey{recv, release}, call)
						}
						return true
					}
					if isReleaseName(name) {
						onRelease(bkey{recv, name}, call)
						return true
					}
				}
				// Non-bracket call (method or plain function): apply the
				// callee's net-delta summary if one exists.
				if fn := flow.StaticCallee(bc.pass.TypesInfo, x); fn != nil {
					if sum, ok := bc.get(fn); ok && len(sum) > 0 {
						onSummary(sum, x)
					}
				}
				return true
			}
			return true
		})
	}
	visit(n, false)
}

// instantiate rewrites a summary key to a caller-side bracket key
// through the call's receiver/argument expressions; ok is false when
// the slot has no printable expression at this call site.
func instantiate(pass *analysis.Pass, k bfSumKey, call *ast.CallExpr, fn *types.Func) (bkey, bool) {
	var base ast.Expr
	if k.slot == 0 {
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || fn.Signature().Recv() == nil {
			return bkey{}, false
		}
		base = sel.X
	} else {
		if k.slot-1 >= len(call.Args) {
			return bkey{}, false
		}
		base = call.Args[k.slot-1]
	}
	return bkey{types.ExprString(base) + k.path, k.release}, true
}

func (l bfLattice) Transfer(s bfState, n ast.Node) bfState {
	bc := l.bc
	bc.bracketEvents(n,
		func(k bkey, _ *ast.CallExpr) { s[k] = s.get(k).shift(1) },
		func(k bkey, _ *ast.CallExpr) { s[k] = s.get(k).shift(-1) },
		func(sum bfSummary, call *ast.CallExpr) {
			fn := flow.StaticCallee(bc.pass.TypesInfo, call)
			for sk, deltas := range sum {
				if k, ok := instantiate(bc.pass, sk, call, fn); ok {
					s.apply(k, deltas)
				}
			}
		},
	)
	return s
}

// summarize computes a function's net bracket deltas on keys rooted at
// its receiver or parameters. Keys rooted at locals cannot outlive the
// frame and are dropped (their leaks are reported by check).
func (bc *bfCtx) summarize(fd *ast.FuncDecl) bfSummary {
	g := bc.cfgs.FuncDecl(fd)
	if g == nil {
		return bfSummary{}
	}
	res := flow.Forward[bfState](g, bfLattice{bc: bc})
	slots := paramSlots(fd)
	var exits []bfState
	for _, s := range res.ExitStates() {
		exits = append(exits, s)
	}
	sum := bfSummary{}
	for _, exit := range exits {
		for k, v := range exit {
			if v == balZero {
				continue
			}
			base, path := splitRecv(k.recv)
			slot, ok := slots[base]
			if !ok {
				continue
			}
			sum[bfSumKey{slot, path, k.release}] |= v
		}
	}
	// A key imbalanced at one exit but untracked (≡ balance 0) at
	// another must include the zero delta.
	for sk := range sum {
		for _, exit := range exits {
			found := false
			for k := range exit {
				base, path := splitRecv(k.recv)
				if slot, ok := slots[base]; ok && (bfSumKey{slot, path, k.release}) == sk {
					found = true
					break
				}
			}
			if !found {
				sum[sk] |= balZero
			}
		}
	}
	return sum
}

// paramSlots maps receiver/parameter names to their slot index
// (receiver = 0, parameters from 1).
func paramSlots(fd *ast.FuncDecl) map[string]int {
	slots := make(map[string]int)
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		slots[fd.Recv.List[0].Names[0].Name] = 0
	}
	slot := 1
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				slot++
				continue
			}
			for _, name := range field.Names {
				slots[name.Name] = slot
				slot++
			}
		}
	}
	return slots
}

// splitRecv splits a printed receiver expression into its base
// identifier and the selector remainder: "s.mu" → ("s", ".mu").
func splitRecv(recv string) (base, path string) {
	if i := strings.IndexByte(recv, '.'); i >= 0 {
		return recv[:i], recv[i:]
	}
	return recv, ""
}

// check reports bracket-balance findings for one function.
func (bc *bfCtx) check(fd *ast.FuncDecl, dirs *dirIndex) {
	g := bc.cfgs.FuncDecl(fd)
	if g == nil {
		return
	}
	res := flow.Forward[bfState](g, bfLattice{bc: bc})

	// First acquire-ish site per key, for placing exit findings.
	firstSite := make(map[bkey]*ast.CallExpr)
	reported := make(map[bkey]bool)
	report := func(k bkey, call *ast.CallExpr, format string, args ...any) {
		if call == nil || reported[k] {
			return
		}
		if dirs.allowed("bracketflow", call.Pos(), fd.Doc) {
			reported[k] = true // waived counts as handled
			return
		}
		reported[k] = true
		bc.pass.Reportf(call.Pos(), format, args...)
	}

	lat := bfLattice{bc: bc}
	res.Walk(func(_ *cfg.Block, n ast.Node, before bfState) {
		// Walk forbids mutating before; replay this node's events on a
		// private copy so a second acquire within the same node still
		// sees the first.
		local := lat.Clone(before)
		bc.bracketEvents(n,
			func(k bkey, call *ast.CallExpr) {
				if firstSite[k] == nil {
					firstSite[k] = call
				}
				if local.get(k)&(balPos|balCeil) != 0 {
					report(k, call,
						"%s may be re-acquired while a previous acquire is still unreleased (missing release on a loop back edge?)",
						k.recv)
				}
				local[k] = local.get(k).shift(1)
			},
			func(k bkey, _ *ast.CallExpr) { local[k] = local.get(k).shift(-1) },
			func(sum bfSummary, call *ast.CallExpr) {
				fn := flow.StaticCallee(bc.pass.TypesInfo, call)
				for sk, deltas := range sum {
					if k, ok := instantiate(bc.pass, sk, call, fn); ok {
						if deltas&(balPos|balCeil) != 0 && firstSite[k] == nil {
							firstSite[k] = call
						}
						local.apply(k, deltas)
					}
				}
			},
		)
	})

	// Exit check: any key that may still be positive at some exit.
	for _, exit := range res.ExitStates() {
		for k, v := range exit {
			if v&(balPos|balCeil) == 0 {
				continue
			}
			report(k, firstSite[k],
				"%s may still be held at return (%s missing on some path; if this helper hands the bracket to its caller, waive with //repro:allow bracketflow <reason>)",
				k.recv, k.release)
		}
	}
}
