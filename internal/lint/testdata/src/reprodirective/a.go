// Package reprodirective exercises the directive syntax checker.
// Findings land on the directive comments themselves, so the
// expectations use the harness's want-above form from the next line.
package reprodirective

type level struct {
	//repro:accounted
	data []uint64
	//repro:frozen
	gen uint64 // want-above `unknown //repro: directive verb "frozen"`
}

//repro:charges level.spc
func (l *level) ok(i int) uint64 { return l.data[i] }

//repro:charges
func (l *level) bad(i int) uint64 { return l.data[i] } // want-above `//repro:charges needs an argument naming the charged space`

// The three allow shapes: well-formed, unknown analyzer, missing
// reason.
func (l *level) waivers(i int) uint64 {
	//repro:allow damcharge recovery path, spaces not constructed yet
	a := l.data[i]
	//repro:allow speling this analyzer does not exist
	b := l.data[i+1] // want-above `names unknown analyzer "speling"`
	//repro:allow durerr
	c := l.data[i+2] // want-above `//repro:allow durerr has no reason`
	return a + b + c
}

// staleWaiver carries a well-formed waiver for a finding that no
// longer exists: nothing in this function trips bracketbalance, so the
// waiver is dead weight that could mask a future finding.
func (l *level) staleWaiver(i int) uint64 {
	//repro:allow bracketbalance locking order fixed in the epoch rewrite
	return l.data[i] // want-above `stale waiver: bracketbalance no longer reports anything`
}
