// Package bracketbalance exercises the acquire/release path checker:
// every RLock/Lock/Begin* must release on all control-flow paths.
package bracketbalance

import "sync"

type store struct {
	mu    sync.RWMutex
	n     int
	other *store
}

func (s *store) BeginSharedReads() { s.mu.RLock() }
func (s *store) EndSharedReads()   { s.mu.RUnlock() }

// straight is the simplest balanced bracket: clean.
func (s *store) straight() int {
	s.mu.RLock()
	n := s.n
	s.mu.RUnlock()
	return n
}

// deferred covers every path, including the early return: clean.
func (s *store) deferred(stop bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if stop {
		return 0
	}
	return s.n
}

// leakyEarlyReturn releases on the fall-through path only; the early
// return leaks the read lock.
func (s *store) leakyEarlyReturn(stop bool) int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) is not matched by RUnlock on every path to return`
	if stop {
		return 0
	}
	n := s.n
	s.mu.RUnlock()
	return n
}

// branched releases on both arms explicitly: clean.
func (s *store) branched(stop bool) int {
	s.mu.RLock()
	if stop {
		s.mu.RUnlock()
		return 0
	}
	n := s.n
	s.mu.RUnlock()
	return n
}

// mismatched releases a different receiver's lock: the acquire never
// balances.
func (s *store) mismatched() int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) is not matched by RUnlock on every path to return`
	n := s.n
	s.other.mu.RUnlock()
	return n
}

// epochLeak opens a shared-read epoch and forgets to close it on the
// early return; Begin*/End* pair generically.
func (s *store) epochLeak(stop bool) int {
	s.other.BeginSharedReads() // want `s\.other\.BeginSharedReads\(\) is not matched by EndSharedReads on every path to return`
	if stop {
		return 0
	}
	n := s.other.n
	s.other.EndSharedReads()
	return n
}

// deferredClosure releases inside a deferred closure: clean.
func (s *store) deferredClosure() int {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	return s.n
}

// handoff intentionally transfers the lock to another goroutine; the
// waiver names the analyzer and explains.
func (s *store) handoff() {
	//repro:allow bracketbalance ownership transfers to the drain goroutine which unlocks
	s.mu.Lock()
	go s.drain()
}

func (s *store) drain() {
	s.n = 0
	s.mu.Unlock()
}
