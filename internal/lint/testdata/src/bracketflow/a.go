// Package bracketflow exercises the balance-as-dataflow checker: the
// shapes bracketbalance's per-acquire path walk cannot see — releases
// skipped on loop back edges and helpers whose net bracket effect is
// conditional.
package bracketflow

import "sync"

type store struct {
	mu sync.RWMutex
	n  int
}

// readN is balanced on every path: clean, and its net-zero summary
// leaves callers untouched.
func (s *store) readN() int {
	s.mu.RLock()
	n := s.n
	s.mu.RUnlock()
	return n
}

// deferred covers all paths, including the early return: clean.
func (s *store) deferred(stop bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if stop {
		return 0
	}
	return s.n
}

// useReadN calls the balanced helper: nothing carries over. Clean.
func (s *store) useReadN() int {
	return s.readN() + s.readN()
}

// loopLeak skips the release on the continue back edge: the next
// iteration re-acquires while the previous RLock is still held.
func (s *store) loopLeak(xs []int) int {
	total := 0
	for _, x := range xs {
		s.mu.RLock() // want `s\.mu may be re-acquired while a previous acquire is still unreleased`
		if x < 0 {
			continue
		}
		total += s.n
		s.mu.RUnlock()
	}
	return total
}

// earlyLeak may return with the read lock held.
func (s *store) earlyLeak(stop bool) int {
	s.mu.RLock() // want `s\.mu may still be held at return`
	if stop {
		return 0
	}
	n := s.n
	s.mu.RUnlock()
	return n
}

// lockIf acquires only when cond holds and hands the bracket to its
// caller; the waiver documents the contract. Its net-delta summary
// {0,+1} still debits every caller.
//
//repro:allow bracketflow conditional acquire handed to the caller by contract
func (s *store) lockIf(cond bool) bool {
	if cond {
		s.mu.Lock()
		return true
	}
	return false
}

// forgetLockIf never releases what lockIf may have acquired: the
// helper's summary carries the possible +1 into this frame.
func (s *store) forgetLockIf(cond bool) int {
	s.lockIf(cond) // want `s\.mu may still be held at return`
	return s.n
}
