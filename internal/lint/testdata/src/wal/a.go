// Package wal exercises the durability error discipline: this package
// basename is in durerr's scope, so discarded Write/Sync/Close/
// Truncate/Rename errors are findings.
package wal

import "os"

type log struct {
	f *os.File
}

// appendChecked handles every error: clean.
func (l *log) appendChecked(rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.f.Sync()
}

// appendSloppy drops the write error in an expression statement and
// blanks the sync error.
func (l *log) appendSloppy(rec []byte) {
	l.f.Write(rec)        // want `error from l\.f\.Write discarded on a durability path`
	_ = l.f.Sync()        // want `error from l\.f\.Sync assigned to blank on a durability path`
	_, _ = l.f.Write(rec) // want `error from l\.f\.Write assigned to blank on a durability path`
}

// closeDeferred drops the close error in a defer: the classic hidden
// failed flush.
func (l *log) closeDeferred() error {
	defer l.f.Close() // want `error from l\.f\.Close discarded \(deferred\) on a durability path`
	_, err := l.f.Write(nil)
	return err
}

// rotate drops os.Rename's error in a goroutine.
func rotate(from, to string) {
	go os.Rename(from, to) // want `error from os\.Rename discarded \(go statement\) on a durability path`
}

// countKept keeps the count but checks the error: clean.
func (l *log) countKept(rec []byte) (int, error) {
	n, err := l.f.Write(rec)
	return n, err
}

// closeOnError is the legitimate discard: the original error is
// already being returned and a Close error would mask the root cause.
func (l *log) closeOnError(rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		l.f.Close() //repro:allow durerr already failing; Close error would mask the write error
		return err
	}
	return nil
}
