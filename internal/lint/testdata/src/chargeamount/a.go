// Package chargeamount exercises the charge-amount analyzer: inside a
// declared charged accessor, the value fed to a charge call must be
// derived from the positions the accessor actually probes — a probed
// index, len/cap of accounted storage, the argument or result of a
// probing callee, or the lockstep charge-per-probe loop idiom.
package chargeamount

type space struct{ reads int }

func (s *space) Read(n int) { s.reads += n }

type level struct {
	//repro:accounted
	data []uint64
	spc  *space
}

// lowerBound charges one read per probe inside the same loop: the
// lockstep idiom. Clean.
//
//repro:charges level.spc
func (l *level) lowerBound(key uint64) int {
	lo, hi := 0, len(l.data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		l.spc.Read(1)
		if l.data[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// get charges the index it probes. Clean.
//
//repro:charges level.spc
func (l *level) get(i int) uint64 {
	v := l.data[i]
	l.spc.Read(i)
	return v
}

// scan charges len of the accounted slice after a bulk probe: the
// documented blessing for size-proportional charges. Clean.
//
//repro:charges level.spc
func (l *level) scan(key uint64) int {
	hits := 0
	for _, v := range l.data {
		if v == key {
			hits++
		}
	}
	l.spc.Read(len(l.data))
	return hits
}

// chainSearch charges the result of a probing callee: probe evidence
// crosses the call via the bottom-up summary. Clean.
//
//repro:charges level.spc
func (l *level) chainSearch(key uint64) int {
	steps := l.probeChainLen(key)
	l.spc.Read(steps)
	return steps
}

// probeChainLen is the extracted probe loop (not itself a declared
// accessor; damcharge's concern, not chargeamount's).
func (l *level) probeChainLen(key uint64) int {
	j := 0
	for j < len(l.data) && l.data[j] < key {
		j++
	}
	return j
}

// syntheticCharge charges a constant stream in its own loop while the
// probes happen elsewhere: the charge COUNT can look right while the
// charged cells are pure fiction.
//
//repro:charges level.spc
func (l *level) syntheticCharge(key uint64) int {
	for n := len(l.data); n > 1; n /= 2 {
		l.spc.Read(1) // want `charge call Read derives from no probed index`
	}
	j := 0
	for j < len(l.data) && l.data[j] < key {
		j++
	}
	return j
}

// scanBudget probes the whole slice but charges a fixed budget that
// has nothing to do with any probed position.
//
//repro:charges level.spc
func (l *level) scanBudget(key uint64) int {
	hits := 0
	for _, v := range l.data {
		if v == key {
			hits++
		}
	}
	budget := 8
	l.spc.Read(budget) // want `charge call Read derives from no probed index`
	return hits
}

// chargeOnly never probes: a pure charge helper, vacuously clean (the
// extent it charges is validated where it is computed).
//
//repro:charges level.spc
func (l *level) chargeOnly(n int) {
	l.spc.Read(n)
}

// amortized charges a constant settled by a later rebuild; the waiver
// documents the amortization argument.
//
//repro:charges level.spc
func (l *level) amortized(i int) uint64 {
	v := l.data[i]
	//repro:allow chargeamount amortized debit settled by the rebuild that follows
	l.spc.Read(4)
	return v
}
