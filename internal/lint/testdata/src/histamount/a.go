// Package histamount is the second regression reproduction of the PR 6
// hypothesis experiment E13 "synthetic midpoint chain", this time from
// the charge-AMOUNT side. histdam catches the bug because the probe
// loop is not a declared accessor (call-site rule); this package
// catches it even where the probing is reachable from the accessor —
// the charges in search derive from a key-independent synthetic
// position stream, not from anything the probe chain touches.
package histamount

type space struct{ reads int }

func (s *space) Read(n int) { s.reads += n }

type level struct {
	//repro:accounted
	data []uint64
	spc  *space
}

// search charges a synthetic midpoint chain: positions depend only on
// len(l.data), not on the probed key. The charge count looks right, so
// runtime DAM accounting passes — but no charge argument derives from
// a probed index, and the loop the charges sit in probes nothing.
//
//repro:charges level.spc
func (l *level) search(key uint64) int {
	for n := len(l.data); n > 1; n /= 2 {
		l.spc.Read(1) // want `charge call Read derives from no probed index: search probes accounted cells elsewhere`
	}
	return l.probeChain(key)
}

// probeChain is the extracted probe loop: probing it is what makes
// search non-vacuous (probe evidence crosses the call via the
// bottom-up prober summary).
func (l *level) probeChain(key uint64) int {
	lo, hi := 0, len(l.data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.data[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound is the corrected shape: one charge per probe in the same
// loop, positions derived from the key. Clean.
//
//repro:charges level.spc
func (l *level) lowerBound(key uint64) int {
	lo, hi := 0, len(l.data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		l.spc.Read(1)
		if l.data[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
