// Package scratchescape exercises the flow-sensitive scratch-ownership
// analyzer: pooled values and //repro:scratch fields must not escape
// the call that produced them — not returned, not stored, not sent,
// not captured by a goroutine, and not passed to a callee whose
// summary says it leaks its argument.
package scratchescape

import "sync"

type cursor struct {
	pos  int
	keys []uint64
}

var cursorPool = sync.Pool{New: func() interface{} { return new(cursor) }}

type merger struct {
	// mergeScratch is the ping/pong buffer reused across merges.
	//repro:scratch
	mergeScratch []uint64
	out          []uint64
	results      chan []uint64
}

// useAndPut is the intended pool lifecycle: get, use, put. Clean.
func useAndPut(n int) int {
	c := cursorPool.Get().(*cursor)
	c.pos = n
	c.keys = c.keys[:0]
	sum := c.pos
	cursorPool.Put(c)
	return sum
}

// leakPooled returns the pooled object itself.
func leakPooled() *cursor {
	c := cursorPool.Get().(*cursor)
	return c // want `returns scratch-backed value c`
}

// leakDirect returns the Get result without even a local.
func leakDirect() interface{} {
	return cursorPool.Get() // want `returns scratch-backed value cursorPool\.Get\(\)`
}

// fillScratch grows the scratch buffer in place: storing INTO scratch
// is the intended use. Clean.
func (m *merger) fillScratch(keys []uint64) {
	m.mergeScratch = m.mergeScratch[:0]
	m.mergeScratch = append(m.mergeScratch, keys...)
}

// publishScratch stores a scratch alias into a durable field: the
// buffer will be overwritten by the next merge while m.out still
// points at it.
func (m *merger) publishScratch() {
	m.out = m.mergeScratch[:3] // want `stores scratch-backed value in m\.out`
}

// sendScratch ships the scratch buffer across a channel.
func (m *merger) sendScratch() {
	m.results <- m.mergeScratch // want `sends scratch-backed value m\.mergeScratch on a channel`
}

// returnScratchAlias leaks through a local alias.
func (m *merger) returnScratchAlias() []uint64 {
	tmp := m.mergeScratch[1:]
	return tmp // want `returns scratch-backed value tmp`
}

// copyOut copies scratch contents into a fresh slice: the copy owns
// its cells, nothing aliases. Clean.
func (m *merger) copyOut() []uint64 {
	out := make([]uint64, len(m.mergeScratch))
	copy(out, m.mergeScratch)
	return out
}

// install stores its argument into a durable field. On its own that is
// fine — the escape only matters when the argument is scratch, which
// the caller-side summary check below catches.
func (m *merger) install(run []uint64) {
	m.out = run
}

// installScratch hands the live scratch buffer to install, whose
// summary says it stores its argument beyond the call.
func (m *merger) installScratch() {
	m.install(m.mergeScratch) // want `passes scratch-backed value to install, which stores it beyond the call`
}

// spawnScratch captures scratch in a goroutine that may outlive the
// merge that owns the buffer.
func (m *merger) spawnScratch() {
	buf := m.mergeScratch[:2]
	go func() { // want `goroutine may outlive scratch-backed value it captures`
		_ = buf[0] + buf[1]
	}()
}

// sumScratch passes scratch to a callee that only reads it: the
// summary is empty, so nothing fires. Clean.
func (m *merger) sumScratch() uint64 {
	return sum(m.mergeScratch)
}

func sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// mergeRuns mirrors the gcola internal that hands its scratch to the
// caller, which installs it before the next merge reuses the buffer;
// the waiver documents that ownership contract.
//
//repro:allow scratchescape caller installs the run before the next merge touches scratch
func (m *merger) mergeRuns() []uint64 {
	m.mergeScratch = append(m.mergeScratch[:0], 1, 2, 3)
	return m.mergeScratch
}
