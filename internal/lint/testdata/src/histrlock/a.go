// Package histrlock is a regression reproduction of the PR 5 pre-fix
// syncdict: the shared-reader fast path took mu.RLock for searches but
// still maintained its stats counters with plain increments, so
// concurrent readers raced on the counter words. rlockpure fails the
// build on exactly that shape; the fixed shape (atomic counters under
// RLock) is below it and stays clean.
package histrlock

import (
	"sync"
	"sync/atomic"
)

type syncDict struct {
	mu       sync.RWMutex
	m        map[uint64]uint64
	searches int64
	found    int64
}

// SearchPrefix is the pre-fix fast path: RLock plus plain counter
// increments — the data race PR 5 shipped and later fixed.
func (d *syncDict) SearchPrefix(k uint64) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.searches++ // want `receiver field d\.searches mutated non-atomically in shared-read region`
	v, ok := d.m[k]
	if ok {
		d.found++ // want `receiver field d\.found mutated non-atomically in shared-read region`
	}
	return v, ok
}

// SearchFixed is the post-fix shape: same RLock bracket, counters
// maintained through sync/atomic. Clean.
func (d *syncDict) SearchFixed(k uint64) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	atomic.AddInt64(&d.searches, 1)
	v, ok := d.m[k]
	if ok {
		atomic.AddInt64(&d.found, 1)
	}
	return v, ok
}
