// Package damcharge exercises the DAM-accounting analyzer: accounted
// storage may only be touched inside declared charged accessors.
package damcharge

type space struct{ reads, writes int }

func (s *space) Read(n int)  { s.reads += n }
func (s *space) Write(n int) { s.writes += n }

type entry struct {
	key, val uint64
}

type level struct {
	//repro:accounted
	data []entry
	spc  *space
}

// get is a declared accessor that actually charges: clean.
//
//repro:charges level.spc
func (l *level) get(i int) entry {
	l.spc.Read(1)
	return l.data[i]
}

// peek is declared but never charges anything: flagged on the name.
//
//repro:charges level.spc
func (l *level) peek(i int) entry { // want `charged accessor peek contains no charge call`
	return l.data[i]
}

// raw is a caller-charged accessor: the directive documents the owner,
// so no charge call is required here.
//
//repro:charges caller:mergeDown
func (l *level) raw(i int) entry {
	return l.data[i]
}

// sneak indexes accounted storage with no charges declaration at all.
func (l *level) sneak(i int) uint64 {
	return l.data[i].key // want `indexes accounted storage outside a charged accessor`
}

// sweep ranges over accounted storage uncharged.
func (l *level) sweep() uint64 {
	var sum uint64
	for _, e := range l.data { // want `ranges over accounted storage outside a charged accessor`
		sum += e.key
	}
	return sum
}

// alias shows taint tracking: a local slice aliasing accounted cells
// is still accounted when indexed.
func (l *level) alias(i int) entry {
	d := l.data
	return d[i] // want `indexes accounted storage outside a charged accessor`
}

// bulk copies accounted cells without an index expression.
func (l *level) bulk(dst []entry) int {
	return copy(dst, l.data) // want `copies accounted storage outside a charged accessor`
}

// grow appends to accounted storage uncharged.
func (l *level) grow(e entry) {
	l.data = append(l.data, e) // want `appends to accounted storage outside a charged accessor`
}

// sizeOnly reads metadata, not cells: len/cap of accounted storage is
// free in the DAM model and stays clean.
func (l *level) sizeOnly() int {
	return len(l.data) + cap(l.data)
}

// waived shows the escape hatch, reason mandatory.
func (l *level) waived(i int) entry {
	//repro:allow damcharge recovery scan replays the WAL before spaces exist
	return l.data[i]
}
