// Package histdam is a regression reproduction of the PR 6 hypothesis
// experiment E13 "synthetic midpoint chain": a binary-search
// "optimization" that probed real accounted cells while charging a
// key-independent synthetic position stream. The probe loop below is
// exactly that shape — it reads level cells through a path that is not
// a declared charged accessor (the charges all happen against the
// synthetic chain in search). damcharge fails the build on it.
package histdam

type space struct{ reads int }

func (s *space) Read(n int) { s.reads += n }

type level struct {
	//repro:accounted
	data []uint64
	spc  *space
}

// search charges a synthetic midpoint chain: positions depend only on
// len(l.data), not on the probed key. The charge count looks right, so
// runtime DAM accounting passes — but the actual probes in probeChain
// are uncharged accesses.
//
//repro:charges level.spc
func (l *level) search(key uint64) int {
	for n := len(l.data); n > 1; n /= 2 {
		l.spc.Read(1) // synthetic: charges midpoints of [0,n), key-independent
	}
	return l.probeChain(key)
}

// probeChain is the extracted probe loop: it indexes accounted cells
// and is NOT a declared accessor, so every probe is flagged.
func (l *level) probeChain(key uint64) int {
	lo, hi := 0, len(l.data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.data[mid] < key { // want `indexes accounted storage outside a charged accessor`
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound is the corrected shape: one declared accessor, one charge
// per probe, positions derived from the key. Clean.
//
//repro:charges level.spc
func (l *level) lowerBound(key uint64) int {
	lo, hi := 0, len(l.data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		l.spc.Read(1)
		if l.data[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
