// Package os is a hermetic stub for linttest testdata: a File with
// the durability-relevant methods and the package-level Rename.
package os

type File struct{ name string }

func Create(name string) (*File, error)     { return &File{name: name}, nil }
func (f *File) Write(p []byte) (int, error) { return len(p), nil }
func (f *File) Sync() error                 { return nil }
func (f *File) Close() error                { return nil }
func (f *File) Truncate(n int64) error      { _ = n; return nil }
func (f *File) Name() string                { return f.name }

func Rename(oldpath, newpath string) error { _, _ = oldpath, newpath; return nil }
