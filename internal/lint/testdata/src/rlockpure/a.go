// Package rlockpure exercises the mutation-free-accessor analyzer:
// no non-atomic receiver mutation under RLock, inside shared-read
// epochs, or in //repro:readonly methods.
package rlockpure

import (
	"sync"
	"sync/atomic"
)

type dict struct {
	mu    sync.RWMutex
	m     map[uint64]uint64
	hits  int64
	gen   uint64
	inner *dict
}

func (d *dict) bump() { d.hits++ }

func (d *dict) size() int { return len(d.m) }

// getClean reads under RLock without mutating: clean.
func (d *dict) getClean(k uint64) (uint64, bool) {
	d.mu.RLock()
	v, ok := d.m[k]
	d.mu.RUnlock()
	return v, ok
}

// getCounted bumps a plain counter under RLock: two findings, the
// direct field write and the call to a known-mutating method.
func (d *dict) getCounted(k uint64) (uint64, bool) {
	d.mu.RLock()
	d.hits++ // want `receiver field d\.hits mutated non-atomically in shared-read region`
	d.bump() // want `call to mutating method dict\.bump in shared-read region`
	v, ok := d.m[k]
	d.mu.RUnlock()
	return v, ok
}

// getAtomic bumps through sync/atomic: mutation is atomic, clean.
func (d *dict) getAtomic(k uint64) (uint64, bool) {
	d.mu.RLock()
	atomic.AddInt64(&d.hits, 1)
	v, ok := d.m[k]
	d.mu.RUnlock()
	return v, ok
}

// getDeferred shows the deferred-closer region reaching the end of the
// function, and a map write inside it.
func (d *dict) getDeferred(k uint64) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.m[k] = d.m[k] + 1 // want `receiver field d\.m\[k\] written non-atomically in shared-read region`
	return d.m[k]
}

// writeLocked mutates under the write lock: out of scope, clean.
func (d *dict) writeLocked(k, v uint64) {
	d.mu.Lock()
	d.m[k] = v
	d.gen++
	d.mu.Unlock()
}

// epoch shows the Begin/EndSharedReads bracket forming a region.
func (d *dict) epoch() int {
	d.inner.BeginSharedReads()
	n := d.inner.size()
	d.gen++ // want `receiver field d\.gen mutated non-atomically in shared-read region`
	d.inner.EndSharedReads()
	return n
}

func (d *dict) BeginSharedReads() { d.mu.RLock() }
func (d *dict) EndSharedReads()   { d.mu.RUnlock() }

// Len is declared read-only, so its whole body is checked even though
// it takes no lock at all.
//
//repro:readonly
func (d *dict) Len() int {
	d.hits++ // want `receiver field d\.hits mutated non-atomically in //repro:readonly method Len`
	return len(d.m)
}

// Stats is read-only and behaves: clean.
//
//repro:readonly
func (d *dict) Stats() (int64, uint64) {
	return atomic.LoadInt64(&d.hits), d.gen
}

// waived documents a deliberate exception with a reason.
func (d *dict) waived(k uint64) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	//repro:allow rlockpure single-writer phase, promoted before concurrent readers exist
	d.hits++
	return d.m[k]
}
