// Package sync is a hermetic stub of the standard library package for
// linttest: just enough surface (RWMutex, Mutex, Pool) for the
// analyzers' testdata to type-check without touching the real stdlib.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   { m.state = 1 }
func (m *Mutex) Unlock() { m.state = 0 }

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    { m.state = 1 }
func (m *RWMutex) Unlock()  { m.state = 0 }
func (m *RWMutex) RLock()   { m.state++ }
func (m *RWMutex) RUnlock() { m.state-- }

type Pool struct {
	New func() interface{}
	x   []interface{}
}

func (p *Pool) Get() interface{} {
	if n := len(p.x); n > 0 {
		v := p.x[n-1]
		p.x = p.x[:n-1]
		return v
	}
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(v interface{}) { p.x = append(p.x, v) }
