// Package atomic is a hermetic stub for linttest testdata.
package atomic

func AddInt64(addr *int64, delta int64) int64 {
	*addr += delta
	return *addr
}

func LoadInt64(addr *int64) int64 { return *addr }
