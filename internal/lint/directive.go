package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The directive vocabulary. Directives are line comments of the form
// //repro:<verb> [args], attached to declarations (accounted, charges,
// readonly, scratch) or to finding sites (allow).
const (
	verbAccounted = "accounted"
	verbCharges   = "charges"
	verbReadonly  = "readonly"
	verbScratch   = "scratch"
	verbAllow     = "allow"
)

// knownAnalyzers is the set of analyzer names //repro:allow may waive.
// scratchalias retired in favor of scratchescape (its flow-sensitive,
// cross-function successor); old waivers must be renamed, which the
// directive checker enforces by rejecting the stale name.
var knownAnalyzers = map[string]bool{
	"damcharge":      true,
	"chargeamount":   true,
	"rlockpure":      true,
	"bracketbalance": true,
	"bracketflow":    true,
	"scratchescape":  true,
	"durerr":         true,
}

// directive is one parsed //repro: comment.
type directive struct {
	verb string
	args string // remainder after the verb, space-trimmed
	pos  token.Pos
}

// parseDirective parses a single comment; ok is false for non-repro
// comments.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, found := strings.CutPrefix(c.Text, "//repro:")
	if !found {
		return directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	return directive{verb: verb, args: strings.TrimSpace(args), pos: c.Pos()}, true
}

// WaiverUsage is the result type every invariant analyzer returns: the
// source positions of the //repro:allow directives that actually
// suppressed one of its findings in this pass. reprodirective unions
// the usage of every analyzer it Requires and reports reasoned waivers
// nothing used — a stale waiver is a suppression whose finding has
// been fixed (or was never real), and leaving it in place would mask
// the next genuine finding at that line.
type WaiverUsage struct {
	Used map[token.Pos]bool
}

// waiverUsageType is the ResultType declared by the invariant
// analyzers.
var waiverUsageType = reflect.TypeOf((*WaiverUsage)(nil))

// dirIndex holds every directive of one package, indexed for the two
// lookups analyzers need: waivers by file line, and decl directives by
// comment group.
type dirIndex struct {
	fset *token.FileSet
	// allowByLine maps file -> line -> waived analyzer name -> position
	// of the //repro:allow comment (only waivers with a non-empty
	// reason count; reprodirective reports the reason-less ones).
	allowByLine map[*token.File]map[int]map[string]token.Pos
	all         []directive
	// usage records which waiver directives suppressed a finding of the
	// analyzer that built this index.
	usage *WaiverUsage
}

// collectDirectives scans all comments of the pass's files.
func collectDirectives(pass *analysis.Pass) *dirIndex {
	idx := &dirIndex{
		fset:        pass.Fset,
		allowByLine: make(map[*token.File]map[int]map[string]token.Pos),
		usage:       &WaiverUsage{Used: make(map[token.Pos]bool)},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				idx.all = append(idx.all, d)
				if d.verb != verbAllow {
					continue
				}
				name, reason, _ := strings.Cut(d.args, " ")
				if strings.TrimSpace(reason) == "" {
					continue // reason-less waivers do not suppress
				}
				tf := pass.Fset.File(d.pos)
				if tf == nil {
					continue
				}
				lines := idx.allowByLine[tf]
				if lines == nil {
					lines = make(map[int]map[string]token.Pos)
					idx.allowByLine[tf] = lines
				}
				line := tf.Line(d.pos)
				set := lines[line]
				if set == nil {
					set = make(map[string]token.Pos)
					lines[line] = set
				}
				set[name] = d.pos
			}
		}
	}
	return idx
}

// allowed reports whether a finding by the named analyzer at pos is
// waived: a //repro:allow <name> <reason> on the same line or the line
// immediately above, or in the given doc comment group (the enclosing
// function's, so one waiver can cover a whole accessor). A waiver that
// suppresses a finding is recorded as used, which is what keeps it off
// reprodirective's stale-waiver report.
func (idx *dirIndex) allowed(name string, pos token.Pos, doc *ast.CommentGroup) bool {
	tf := idx.fset.File(pos)
	if tf == nil {
		return false
	}
	if lines := idx.allowByLine[tf]; lines != nil {
		line := tf.Line(pos)
		if p, ok := lines[line][name]; ok {
			idx.usage.Used[p] = true
			return true
		}
		if p, ok := lines[line-1][name]; ok {
			idx.usage.Used[p] = true
			return true
		}
	}
	if doc != nil {
		for _, c := range doc.List {
			if d, ok := parseDirective(c); ok && d.verb == verbAllow {
				waived, reason, _ := strings.Cut(d.args, " ")
				if waived == name && strings.TrimSpace(reason) != "" {
					idx.usage.Used[d.pos] = true
					return true
				}
			}
		}
	}
	return false
}

// funcDirective returns the args of the first //repro:<verb> directive
// in the function's doc comment.
func funcDirective(fd *ast.FuncDecl, verb string) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if d, ok := parseDirective(c); ok && d.verb == verb {
			return d.args, true
		}
	}
	return "", false
}

// markedFields collects the types.Var objects of struct fields and
// package-level vars whose declarations carry the given directive verb
// (in their doc comment or trailing line comment).
func markedFields(pass *analysis.Pass, verb string) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	mark := func(names []*ast.Ident) {
		for _, n := range names {
			if obj := pass.TypesInfo.Defs[n]; obj != nil {
				marked[obj] = true
			}
		}
	}
	hasVerb := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if d, ok := parseDirective(c); ok && d.verb == verb {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if hasVerb(n.Doc, n.Comment) {
					mark(n.Names)
				}
			case *ast.ValueSpec:
				if hasVerb(n.Doc, n.Comment) {
					mark(n.Names)
				}
			}
			return true
		})
	}
	return marked
}

// receiverObject returns the types.Var of the receiver of fd, or nil.
func receiverObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// rootedAt reports whether expr is the given object or a selector /
// index / slice / star / paren chain rooted at it (e.g. s.stats.n with
// root s).
func rootedAt(pass *analysis.Pass, expr ast.Expr, root types.Object) bool {
	if root == nil {
		return false
	}
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e] == root
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			expr = e.X
		default:
			return false
		}
	}
}

// freshAlloc reports whether e is a builtin make or new call: the
// result is newly allocated memory and cannot alias anything, even
// when a marked expression appears in the size arguments.
func freshAlloc(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "make" && id.Name != "new") {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// selectsMarked reports whether expr contains a selector (or bare
// ident) whose object is in marked — i.e. the expression reaches
// through a marked field anywhere in its chain.
func selectsMarked(pass *analysis.Pass, expr ast.Expr, marked map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if marked[pass.TypesInfo.Uses[n.Sel]] {
				found = true
				return false
			}
		case *ast.Ident:
			if marked[pass.TypesInfo.Uses[n]] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
