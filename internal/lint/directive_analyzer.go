package lint

import (
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// DirectiveAnalyzer is the syntax gate for the //repro: directive
// vocabulary. It rejects unknown verbs, //repro:allow waivers that
// name an unknown analyzer or omit the reason (a waiver without a
// reason is itself a finding — the whole point of the waiver policy is
// that every suppression is explained), and //repro:charges
// declarations without an argument (the argument documents which
// space, or "caller:<who>", so the accessor set stays reviewable).
var DirectiveAnalyzer = &analysis.Analyzer{
	Name:     "reprodirective",
	Doc:      "//repro: directives must be well-formed; waivers must name a known analyzer and carry a reason",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDirectiveCheck,
}

func runDirectiveCheck(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)
	for _, d := range idx.all {
		switch d.verb {
		case verbAccounted, verbReadonly, verbScratch:
			// Marker verbs; arguments (free-form notes) are permitted.
		case verbCharges:
			if d.args == "" {
				pass.Reportf(d.pos, "//repro:charges needs an argument naming the charged space (or caller:<who>)")
			}
		case verbAllow:
			name, reason, _ := strings.Cut(d.args, " ")
			if name == "" {
				pass.Reportf(d.pos, "//repro:allow needs an analyzer name and a reason")
				continue
			}
			if !knownAnalyzers[name] {
				pass.Reportf(d.pos, "//repro:allow names unknown analyzer %q (known: damcharge, rlockpure, bracketbalance, scratchalias, durerr)", name)
				continue
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(d.pos, "//repro:allow %s has no reason — every waiver must be explained", name)
			}
		default:
			pass.Reportf(d.pos, "unknown //repro: directive verb %q", d.verb)
		}
	}
	return nil, nil
}
