package lint

import (
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// DirectiveAnalyzer is the gate for the //repro: directive vocabulary.
// It rejects unknown verbs, //repro:allow waivers that name an unknown
// analyzer or omit the reason (a waiver without a reason is itself a
// finding — the whole point of the waiver policy is that every
// suppression is explained), and //repro:charges declarations without
// an argument (the argument documents which space, or "caller:<who>",
// so the accessor set stays reviewable).
//
// It also reports stale waivers: it requires every invariant analyzer,
// unions the WaiverUsage each returns (the set of //repro:allow
// positions that actually suppressed a finding), and flags any
// well-formed waiver nothing used. A stale waiver means the finding it
// suppressed has been fixed or was never real — leaving it in place
// would silently mask the next genuine finding at that line.
var DirectiveAnalyzer = &analysis.Analyzer{
	Name: "reprodirective",
	Doc:  "//repro: directives must be well-formed; waivers must name a known analyzer, carry a reason, and still suppress something",
	Requires: []*analysis.Analyzer{
		inspect.Analyzer,
		DamchargeAnalyzer,
		ChargeamountAnalyzer,
		RlockpureAnalyzer,
		BracketAnalyzer,
		BracketflowAnalyzer,
		ScratchescapeAnalyzer,
		DurerrAnalyzer,
	},
	Run: runDirectiveCheck,
}

// knownAnalyzerList is knownAnalyzers sorted, for the unknown-name
// message.
func knownAnalyzerList() string {
	names := make([]string, 0, len(knownAnalyzers))
	for n := range knownAnalyzers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func runDirectiveCheck(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)

	// Union the waiver positions every invariant analyzer reported
	// using. A reasoned waiver none of them used is stale.
	used := make(map[string]bool) // position strings, robust across passes
	for _, result := range pass.ResultOf {
		if usage, ok := result.(*WaiverUsage); ok && usage != nil {
			for p := range usage.Used {
				used[pass.Fset.Position(p).String()] = true
			}
		}
	}

	for _, d := range idx.all {
		switch d.verb {
		case verbAccounted, verbReadonly, verbScratch:
			// Marker verbs; arguments (free-form notes) are permitted.
		case verbCharges:
			if d.args == "" {
				pass.Reportf(d.pos, "//repro:charges needs an argument naming the charged space (or caller:<who>)")
			}
		case verbAllow:
			name, reason, _ := strings.Cut(d.args, " ")
			if name == "" {
				pass.Reportf(d.pos, "//repro:allow needs an analyzer name and a reason")
				continue
			}
			if !knownAnalyzers[name] {
				pass.Reportf(d.pos, "//repro:allow names unknown analyzer %q (known: %s)", name, knownAnalyzerList())
				continue
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(d.pos, "//repro:allow %s has no reason — every waiver must be explained", name)
				continue
			}
			if !used[pass.Fset.Position(d.pos).String()] {
				pass.Reportf(d.pos, "stale waiver: %s no longer reports anything this //repro:allow suppresses — delete it so it cannot mask a future finding", name)
			}
		default:
			pass.Reportf(d.pos, "unknown //repro: directive verb %q", d.verb)
		}
	}
	return nil, nil
}
