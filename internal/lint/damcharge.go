package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DamchargeAnalyzer enforces the DAM-accounting invariant: every
// access to an accounted array goes through a declared charged
// accessor. Storage marked //repro:accounted may only be indexed,
// sliced, or ranged over inside a function whose doc comment carries
// //repro:charges <space>; such a function must in turn contain a
// charge call (Read/Write on a space, or a call to another charged
// accessor) unless its argument starts with "caller:", which documents
// that its callers own the charging. This is the analyzer that would
// have failed the build on PR 6's synthetic binary-search midpoint
// chain — an "optimization" that probed accounted cells while charging
// a key-independent synthetic position stream.
var DamchargeAnalyzer = &analysis.Analyzer{
	Name:       "damcharge",
	Doc:        "accounted arrays may only be accessed inside //repro:charges accessors",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: waiverUsageType,
	Run:        runDamcharge,
}

// chargeCallNames are method/function names that constitute a charge:
// the dam.Space primitives and the per-structure charge helpers (which
// are themselves charged accessors, so the set stays closed).
var chargeCallNames = map[string]bool{
	"Read": true, "Write": true,
	"chargeRead": true, "chargeWrite": true,
	"touch": true, "dirty": true,
}

func runDamcharge(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	accounted := markedFields(pass, verbAccounted)
	if len(accounted) == 0 {
		return dirs.usage, nil
	}
	// chargers: names of package functions/methods declared as charged
	// accessors, so "contains a call to another charged accessor"
	// satisfies the charge-call requirement.
	chargers := make(map[string]bool)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if _, ok := funcDirective(fd, verbCharges); ok {
			chargers[fd.Name.Name] = true
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if args, ok := funcDirective(fd, verbCharges); ok {
			checkAccessorCharges(pass, fd, args, chargers)
			return
		}
		checkUncharged(pass, fd, accounted, dirs)
	})
	return dirs.usage, nil
}

// checkAccessorCharges verifies a declared accessor actually charges:
// its body must contain a call to a charge primitive or to another
// charged accessor, unless the directive defers to its callers.
func checkAccessorCharges(pass *analysis.Pass, fd *ast.FuncDecl, args string, chargers map[string]bool) {
	if strings.HasPrefix(args, "caller:") {
		return
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if chargeCallNames[fun.Sel.Name] || chargers[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if chargeCallNames[fun.Name] || chargers[fun.Name] {
				found = true
			}
		}
		return !found
	})
	if !found {
		pass.Reportf(fd.Name.Pos(),
			"charged accessor %s contains no charge call (use //repro:charges caller:<who> if its callers charge)",
			fd.Name.Name)
	}
}

// checkUncharged flags accesses to accounted storage in a function
// that is not a declared accessor. Local aliases of accounted storage
// (slice-typed values assigned from it) are tracked within the
// function.
func checkUncharged(pass *analysis.Pass, fd *ast.FuncDecl, accounted map[types.Object]bool, dirs *dirIndex) {
	// taint: locals aliasing accounted storage.
	taint := make(map[types.Object]bool)
	reaches := func(e ast.Expr) bool {
		return selectsMarked(pass, e, accounted) || selectsMarked(pass, e, taint)
	}
	report := func(pos ast.Node, what string) {
		if dirs.allowed("damcharge", pos.Pos(), fd.Doc) {
			return
		}
		pass.Reportf(pos.Pos(),
			"%s accounted storage outside a charged accessor (mark %s with //repro:charges <space> or charge via an accessor)",
			what, fd.Name.Name)
	}
	// aliasable: only reference-like values propagate taint; reading a
	// basic-typed element is an access (caught at the index expression),
	// not an alias.
	aliasable := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer, *types.Array:
			return true
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && aliasable(rhs) && reaches(rhs) && !freshAlloc(pass, rhs) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						taint[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						taint[obj] = true
					}
				}
			}
		case *ast.IndexExpr:
			if reaches(n.X) {
				report(n, "indexes")
				return false
			}
		case *ast.CallExpr:
			// copy and append move cells without an index expression.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "copy":
						for _, arg := range n.Args {
							if reaches(arg) {
								report(n, "copies")
								break
							}
						}
					case "append":
						if len(n.Args) > 0 && reaches(n.Args[0]) {
							report(n, "appends to")
						}
					}
				}
			}
		case *ast.SliceExpr:
			// Slicing re-aliases without touching cells; it only matters
			// when the result is kept (handled by assignment tainting) or
			// accessed (handled at the eventual index). Not a finding.
		case *ast.RangeStmt:
			if n.X != nil && reaches(n.X) {
				report(n.X, "ranges over")
			}
		}
		return true
	})
}
