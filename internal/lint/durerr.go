package lint

import (
	"go/ast"
	"go/types"
	"path"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DurerrAnalyzer enforces the durability error discipline: in the
// durability-critical code — the wal, snap, durable, and extmem
// packages and the facade's durability*.go files — an error from Write, Sync,
// Close, Truncate, or Rename must not be discarded, neither by calling
// in an expression statement nor by assigning the error to blank. A
// dropped Sync error is a silently-lost durability guarantee; a
// dropped Close can hide a failed flush.
//
// Writers that are documented never to fail (bytes.Buffer,
// strings.Builder, hash.Hash implementations) are exempt; anything
// else needs a //repro:allow durerr <reason> waiver (the usual one:
// close-on-error paths where the original error is already being
// returned).
var DurerrAnalyzer = &analysis.Analyzer{
	Name:       "durerr",
	Doc:        "durability paths must not discard Write/Sync/Close/Truncate/Rename errors",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: waiverUsageType,
	Run:        runDurerr,
}

// durErrMethods are the error-returning calls the discipline covers.
var durErrMethods = map[string]bool{
	"Write": true, "Sync": true, "Close": true, "Truncate": true, "Rename": true,
}

// durerrPackages are the import-path base names in scope; files named
// durability*.go are in scope regardless of package. extmem is in scope
// because a dropped Close there can hide a failed chunk flush exactly
// like a dropped WAL Sync.
var durerrPackages = map[string]bool{"wal": true, "snap": true, "durable": true, "extmem": true}

func runDurerr(pass *analysis.Pass) (interface{}, error) {
	pkgInScope := durerrPackages[path.Base(strings.TrimSuffix(pass.Pkg.Path(), "_test"))] ||
		durerrPackages[strings.TrimSuffix(path.Base(pass.Pkg.Path()), "_test")]
	dirs := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	fileInScope := func(pos ast.Node) bool {
		if pkgInScope {
			return true
		}
		f := pass.Fset.File(pos.Pos())
		if f == nil {
			return false
		}
		return strings.HasPrefix(filepath.Base(f.Name()), "durability")
	}

	var enclosing *ast.FuncDecl
	ins.Nodes([]ast.Node{(*ast.FuncDecl)(nil), (*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil), (*ast.DeferStmt)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node, push bool) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if push {
				enclosing = fd
			}
			return true
		}
		if !push || !fileInScope(n) {
			return true
		}
		var doc *ast.CommentGroup
		if enclosing != nil {
			doc = enclosing.Doc
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				reportDiscard(pass, call, dirs, doc, "discarded")
			}
		case *ast.DeferStmt:
			reportDiscard(pass, s.Call, dirs, doc, "discarded (deferred)")
		case *ast.GoStmt:
			reportDiscard(pass, s.Call, dirs, doc, "discarded (go statement)")
		case *ast.AssignStmt:
			// Flag when every error-typed result lands in a blank ident.
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isDurErrCall(pass, call) {
					continue
				}
				if allErrorsBlank(pass, s, i, call) {
					reportDiscard(pass, call, dirs, doc, "assigned to blank")
				}
			}
		}
		return true
	})
	return dirs.usage, nil
}

// isDurErrCall reports whether call is one of the covered methods (or
// package functions, e.g. os.Rename) returning an error, excluding the
// documented never-fail writers.
func isDurErrCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var name string
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if !durErrMethods[name] {
		return false
	}
	// Must return an error somewhere in its results.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || !hasErrorResult(sig) {
		return false
	}
	// Exempt never-fail writers.
	if recv != nil {
		if t := pass.TypesInfo.TypeOf(recv); t != nil {
			ts := strings.TrimPrefix(types.TypeString(t, nil), "*")
			switch {
			case ts == "bytes.Buffer", ts == "strings.Builder":
				return false
			case strings.HasPrefix(ts, "hash."):
				return false
			}
		}
	}
	return true
}

func hasErrorResult(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.TypeString(res.At(i).Type(), nil) == "error" {
			return true
		}
	}
	return false
}

// allErrorsBlank reports whether every error result of the i-th RHS
// call is assigned to blank. Two shapes: one call as the entire RHS
// (n LHS for n results) and a 1:1 multi-assign.
func allErrorsBlank(pass *analysis.Pass, s *ast.AssignStmt, i int, call *ast.CallExpr) bool {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(s.Rhs) == 1 && len(s.Lhs) == res.Len() {
		for j := 0; j < res.Len(); j++ {
			if types.TypeString(res.At(j).Type(), nil) == "error" && !isBlank(s.Lhs[j]) {
				return false
			}
		}
		return true
	}
	// 1:1 assignment: the call must have exactly one result (the error).
	if i < len(s.Lhs) && res.Len() == 1 {
		return isBlank(s.Lhs[i])
	}
	return false
}

func reportDiscard(pass *analysis.Pass, call *ast.CallExpr, dirs *dirIndex, doc *ast.CommentGroup, how string) {
	if !isDurErrCall(pass, call) {
		return
	}
	if dirs.allowed("durerr", call.Pos(), doc) {
		return
	}
	name := "call"
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name = types.ExprString(sel.X) + "." + sel.Sel.Name
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		name = id.Name
	}
	pass.Reportf(call.Pos(), "error from %s %s on a durability path (check it, or waive with //repro:allow durerr <reason>)", name, how)
}
