package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ScratchAnalyzer enforces the scratch-buffer ownership rules
// (DESIGN.md rules 1-5): a value derived from sync.Pool.Get or from a
// field marked //repro:scratch is only valid inside the call that
// produced it. Flagged escapes: returning a scratch-backed value,
// storing it into a field that is not itself scratch, and sending it
// on a channel. Assignments INTO scratch (c.scratch.x = ..., or fields
// of a pool-owned object) are the intended use and pass. Taint is
// tracked intra-procedurally through assignments of reference-like
// values (slices, pointers, maps); passing scratch to a callee is not
// flagged — the callee's own returns are the escape points.
var ScratchAnalyzer = &analysis.Analyzer{
	Name:     "scratchalias",
	Doc:      "pooled and //repro:scratch buffers must not escape (returned, stored, or sent)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runScratch,
}

func runScratch(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	scratch := markedFields(pass, verbScratch)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkScratchEscapes(pass, fd, scratch, dirs)
	})
	return nil, nil
}

// isPoolGet reports whether call is (*sync.Pool).Get, directly or
// under a type assertion.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	return strings.HasSuffix(strings.TrimPrefix(types.TypeString(t, nil), "*"), "sync.Pool")
}

// aliasLike reports whether t can alias scratch memory; basic-typed
// copies (an int pulled out of a pooled struct) cannot.
func aliasLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Array, *types.Struct, *types.Interface:
		_ = u
		return true
	}
	return false
}

func checkScratchEscapes(pass *analysis.Pass, fd *ast.FuncDecl, scratch map[types.Object]bool, dirs *dirIndex) {
	taint := make(map[types.Object]bool)
	tainted := func(e ast.Expr) bool {
		if freshAlloc(pass, e) {
			return false
		}
		if isPoolGet(pass, e) {
			return true
		}
		if selectsMarked(pass, e, scratch) || selectsMarked(pass, e, taint) {
			return true
		}
		// A call with a tainted argument to a builtin that aliases its
		// arguments (append) stays tainted.
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, a := range call.Args {
						if selectsMarked(pass, a, scratch) || selectsMarked(pass, a, taint) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	report := func(n ast.Node, format string, args ...any) {
		if dirs.allowed("scratchalias", n.Pos(), fd.Doc) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}
	// rootTainted: whether the base of an LHS selector chain is itself
	// scratch-derived (storing into the pooled object is fine).
	rootTainted := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if scratch[pass.TypesInfo.Uses[x.Sel]] {
					return true
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.Ident:
				return taint[pass.TypesInfo.Uses[x]]
			default:
				return false
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint flows right to left; a store into a non-scratch field
			// from a tainted RHS is an escape.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lhs := n.Lhs[i]
				t := pass.TypesInfo.TypeOf(rhs)
				// Multi-value RHS (v := pool.Get().(*T) has one RHS) —
				// only same-index pairs are tracked.
				if !tainted(rhs) || !aliasLike(t) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					if obj := pass.TypesInfo.Defs[l]; obj != nil {
						taint[obj] = true
					} else if obj := pass.TypesInfo.Uses[l]; obj != nil {
						taint[obj] = true
					}
				default:
					// Selector / index LHS: storing into scratch itself (or
					// into a pool-owned local) is the intended use; storing
					// anywhere else leaks the alias past this call.
					if !rootTainted(lhs) {
						report(n, "stores scratch-backed value in %s (scratch must not outlive the call; DESIGN.md scratch rules)",
							types.ExprString(lhs))
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if aliasLike(pass.TypesInfo.TypeOf(res)) && tainted(res) {
					report(n, "returns scratch-backed value %s (scratch is only valid inside the call that produced it)",
						types.ExprString(res))
				}
			}
		case *ast.SendStmt:
			if aliasLike(pass.TypesInfo.TypeOf(n.Value)) && tainted(n.Value) {
				report(n, "sends scratch-backed value %s on a channel", types.ExprString(n.Value))
			}
		}
		return true
	})
}
