package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/flow"
)

// ScratchescapeAnalyzer is the flow-sensitive, cross-function successor
// of scratchalias: a value derived from sync.Pool.Get or from a field
// marked //repro:scratch must not outlive the call that produced it.
// Escapes flagged: returning a scratch-backed value, storing it into a
// location not itself scratch-owned, sending it on a channel, and
// capturing it in a closure that escapes (stored, returned, sent, or
// started as a goroutine — a deferred closure does not escape).
//
// Two upgrades over the retired v1:
//
//   - Flow-sensitive taint: reassigning a local to a fresh allocation
//     kills its taint, so "reuse scratch, then return a fresh copy
//     through the same variable" is clean where v1 false-positived;
//     taint reaching a return through a loop back edge is caught where
//     v1's single forward pass could miss it.
//   - Cross-function within the package: bottom-up call summaries
//     record, per declared function, which results are scratch-backed
//     or derived from which parameters, and which parameters the
//     callee stores beyond the call. Handing scratch to a same-package
//     callee that leaks it is a finding at the call site; a callee
//     returning its own pooled value taints the caller's result.
//
// Cross-package and dynamic calls have no summary and are assumed
// neither to retain arguments nor to return scratch (the v1 caveat,
// unchanged); the append builtin propagates taint from its arguments.
var ScratchescapeAnalyzer = &analysis.Analyzer{
	Name:       "scratchescape",
	Doc:        "pooled and //repro:scratch buffers must not escape (returned, stored, sent, or captured)",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: waiverUsageType,
	Run:        runScratchescape,
}

// escMask is a small label set: bit 0 marks scratch-backed memory; bit
// i+1 marks "derived from parameter slot i" (slot 0 is the receiver,
// slots 1.. the declared parameters, capped at escMaxParams).
type escMask uint32

const (
	escScratch   escMask = 1
	escMaxParams         = 16
)

func paramBit(slot int) escMask {
	if slot < 0 || slot >= escMaxParams {
		return 0
	}
	return 1 << (slot + 1)
}

// escSummary is one function's bottom-up summary.
type escSummary struct {
	// ret holds, per result position, the labels that flow into it.
	ret []escMask
	// escapes is the union of parameter bits stored/sent/captured
	// beyond the callee's own frame (transitively).
	escapes escMask
}

func escSummaryEqual(a, b escSummary) bool {
	if a.escapes != b.escapes || len(a.ret) != len(b.ret) {
		return false
	}
	for i := range a.ret {
		if a.ret[i] != b.ret[i] {
			return false
		}
	}
	return true
}

func runScratchescape(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	scratch := markedFields(pass, verbScratch)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	g := flow.PackageGraph(pass)

	ec := &escCtx{pass: pass, scratch: scratch, cfgs: cfgs, graph: g}

	// Phase 1: bottom-up summaries (no reporting).
	ec.summaries = flow.Summaries(g, escSummaryEqual,
		func(fn *types.Func, fd *ast.FuncDecl, get func(*types.Func) (escSummary, bool)) escSummary {
			ec.get = get
			return ec.analyze(fd, nil, nil)
		})
	ec.get = func(fn *types.Func) (escSummary, bool) { s, ok := ec.summaries[fn]; return s, ok }

	// Phase 2: re-run each function with reporting enabled.
	for _, fn := range g.Funcs() {
		fd := g.Decls[fn]
		ec.analyze(fd, dirs, fd.Doc)
	}
	return dirs.usage, nil
}

type escCtx struct {
	pass      *analysis.Pass
	scratch   map[types.Object]bool
	cfgs      *ctrlflow.CFGs
	graph     *flow.Graph
	summaries map[*types.Func]escSummary
	get       func(*types.Func) (escSummary, bool)
}

// escState maps labeled locals to their label masks.
type escState map[types.Object]escMask

type escLattice struct {
	ec *escCtx
	// params maps receiver/parameter objects to their slot bit.
	params map[types.Object]escMask
	// entry seeds non-param labels (closure captures).
	entry escState
}

func (l escLattice) Entry() escState {
	s := make(escState, len(l.params)+len(l.entry))
	for obj, bit := range l.params {
		s[obj] = bit
	}
	for obj, m := range l.entry {
		s[obj] |= m
	}
	return s
}

func (escLattice) Clone(s escState) escState {
	c := make(escState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (l escLattice) Join(a, b escState) escState {
	j := l.Clone(a)
	for k, v := range b {
		j[k] |= v
	}
	return j
}

func (escLattice) Equal(a, b escState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// labels computes the label mask of an expression in state s.
func (l escLattice) labels(s escState, e ast.Expr) escMask {
	ec := l.ec
	pass := ec.pass
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		return s[pass.TypesInfo.Uses[e]]
	case *ast.ParenExpr:
		return l.labels(s, e.X)
	case *ast.StarExpr:
		return l.labels(s, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return l.labels(s, e.X)
		}
		return 0
	case *ast.SelectorExpr:
		m := l.labels(s, e.X)
		if ec.scratch[pass.TypesInfo.Uses[e.Sel]] {
			m |= escScratch
		}
		return m
	case *ast.IndexExpr:
		return l.labels(s, e.X)
	case *ast.SliceExpr:
		return l.labels(s, e.X)
	case *ast.TypeAssertExpr:
		return l.labels(s, e.X)
	case *ast.CompositeLit:
		return 0 // fresh memory; element aliases are beyond v2's scope (as in v1)
	case *ast.FuncLit:
		// A closure carries the labels of everything it captures.
		return l.capturedMask(s, e)
	case *ast.CallExpr:
		return l.callLabels(s, e)
	case *ast.BinaryExpr:
		return 0 // arithmetic/comparison results are values, not aliases
	}
	return 0
}

// callLabels resolves a call's result labels: pool.Get is scratch, the
// append builtin aliases its arguments, and same-package callees
// translate their summary through the call's arguments. The mask of a
// multi-result call is the union (assignTo splits by position when a
// summary is available).
func (l escLattice) callLabels(s escState, call *ast.CallExpr) escMask {
	masks := l.callResultMasks(s, call)
	var m escMask
	for _, rm := range masks {
		m |= rm
	}
	return m
}

// callResultMasks returns per-result labels for a call (a single-entry
// slice for single-result calls and unknown callees).
func (l escLattice) callResultMasks(s escState, call *ast.CallExpr) []escMask {
	ec := l.ec
	pass := ec.pass
	if isPoolGet(pass, call) {
		return []escMask{escScratch}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var m escMask
				for _, a := range call.Args {
					m |= l.labels(s, a)
				}
				return []escMask{m}
			}
			return []escMask{0}
		}
	}
	fn := flow.StaticCallee(pass.TypesInfo, call)
	if fn == nil {
		return []escMask{0}
	}
	sum, ok := ec.get(fn)
	if !ok {
		return []escMask{0} // cross-package or not yet computed (cycle bottom)
	}
	argMasks := l.argSlotMasks(s, call, fn)
	out := make([]escMask, len(sum.ret))
	for i, rm := range sum.ret {
		out[i] = translateMask(rm, argMasks)
	}
	if len(out) == 0 {
		out = []escMask{0}
	}
	return out
}

// argSlotMasks computes the label mask of each argument slot at a call
// site (slot 0 = receiver for method calls).
func (l escLattice) argSlotMasks(s escState, call *ast.CallExpr, fn *types.Func) []escMask {
	var slots []escMask
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn.Signature().Recv() != nil {
		slots = append(slots, l.labels(s, sel.X))
	} else {
		slots = append(slots, 0)
	}
	for _, a := range call.Args {
		slots = append(slots, l.labels(s, a))
	}
	return slots
}

// translateMask rewrites a callee-side mask into caller labels: the
// scratch bit passes through (the callee's own pooled memory is
// scratch for the caller too); parameter bits become the labels of the
// corresponding argument.
func translateMask(m escMask, argMasks []escMask) escMask {
	var out escMask
	if m&escScratch != 0 {
		out |= escScratch
	}
	for slot := 0; slot < escMaxParams; slot++ {
		if m&paramBit(slot) != 0 && slot < len(argMasks) {
			out |= argMasks[slot]
		}
	}
	return out
}

// capturedMask is the union of labels of free variables the closure
// references.
func (l escLattice) capturedMask(s escState, fl *ast.FuncLit) escMask {
	var m escMask
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := l.ec.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() >= fl.End() {
			m |= s[obj]
		}
		return true
	})
	return m
}

// scratchRooted reports whether an LHS chain stores into scratch-owned
// memory: a //repro:scratch field anywhere in the chain, or a base
// whose label carries the scratch bit (fields of a pooled object are
// pooled memory).
func (l escLattice) scratchRooted(s escState, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if l.ec.scratch[l.ec.pass.TypesInfo.Uses[x.Sel]] {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return s[l.ec.pass.TypesInfo.Uses[x]]&escScratch != 0
		default:
			return false
		}
	}
}

// baseMask is the label mask of the base identifier of an LHS chain
// (s.buf, h[0], *p.field → s, h, p). Storing a value into a location
// rooted at object X cannot extend the value's lifetime beyond X's, so
// stores subtract the base's own bits: sc.buf = sc.buf[:0] mutates
// sc's state, it does not leak sc.
func (l escLattice) baseMask(s escState, e ast.Expr) escMask {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return s[l.ec.pass.TypesInfo.Uses[x]]
		default:
			return 0
		}
	}
}

func (l escLattice) Transfer(s escState, n ast.Node) escState {
	pass := l.ec.pass
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// x, y := f(): split per-result labels when known.
			var masks []escMask
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				masks = l.callResultMasks(s, call)
			} else if ta, ok := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); ok {
				masks = []escMask{l.labels(s, ta.X)}
			}
			for i, lhs := range n.Lhs {
				var m escMask
				if len(masks) == len(n.Lhs) {
					m = masks[i]
				} else if len(masks) == 1 {
					m = masks[0]
				}
				l.assignTo(s, lhs, m)
			}
			return s
		}
		for i, rhs := range n.Rhs {
			if i >= len(n.Lhs) {
				break
			}
			m := l.labels(s, rhs)
			if !aliasLike(pass.TypesInfo.TypeOf(rhs)) {
				m = 0 // a basic-typed copy cannot alias scratch
			}
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Op-assigns only mutate in place; keep existing labels.
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil {
						s[obj] |= m
					}
					continue
				}
			}
			l.assignTo(s, n.Lhs[i], m)
		}
	case *ast.ValueSpec:
		for i, name := range n.Names {
			var m escMask
			if i < len(n.Values) {
				if aliasLike(pass.TypesInfo.TypeOf(n.Values[i])) {
					m = l.labels(s, n.Values[i])
				}
			} else if len(n.Values) == 1 {
				if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok {
					masks := l.callResultMasks(s, call)
					if i < len(masks) {
						m = masks[i]
					}
				}
			}
			l.assignTo(s, name, m)
		}
	}
	return s
}

// assignTo performs a strong update on ident targets; selector/index
// targets do not change local state (escape checking happens in the
// reporting walk).
func (l escLattice) assignTo(s escState, lhs ast.Expr, m escMask) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(l.ec.pass, id)
	if obj == nil {
		return
	}
	// Parameters keep their slot bit: the caller's alias still exists
	// even after the callee rebinds the name.
	base := l.params[obj]
	if m == 0 && base == 0 {
		delete(s, obj)
		return
	}
	s[obj] = m | base
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// analyze runs the escape flow over one declared function: it returns
// the function's summary and, when dirs is non-nil, reports scratch
// escapes. Closure bodies are analyzed recursively with their captured
// entry state.
func (ec *escCtx) analyze(fd *ast.FuncDecl, dirs *dirIndex, doc *ast.CommentGroup) escSummary {
	params := make(map[types.Object]escMask)
	slot := 0
	addParam := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := ec.pass.TypesInfo.Defs[name]; obj != nil && aliasLike(obj.Type()) {
				params[obj] = paramBit(slot)
			}
			slot++
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		addParam(fd.Recv.List[0].Names)
	} else {
		slot++ // keep slot 0 reserved for the receiver
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				slot++ // unnamed parameter still occupies a slot
				continue
			}
			addParam(field.Names)
		}
	}
	nresults := 0
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				nresults++
			} else {
				nresults += len(field.Names)
			}
		}
	}
	g := ec.cfgs.FuncDecl(fd)
	lat := escLattice{ec: ec, params: params}
	return ec.analyzeCFG(g, lat, fd.Body, nresults, dirs, doc)
}

// analyzeCFG is the shared body of analyze (declarations) and the
// nested closure analysis.
func (ec *escCtx) analyzeCFG(g *cfg.CFG, lat escLattice, body *ast.BlockStmt, nresults int, dirs *dirIndex, doc *ast.CommentGroup) escSummary {
	sum := escSummary{ret: make([]escMask, nresults)}
	if g == nil {
		return sum
	}
	report := func(n ast.Node, format string, args ...any) {
		if dirs == nil {
			return
		}
		if dirs.allowed("scratchescape", n.Pos(), doc) {
			return
		}
		ec.pass.Reportf(n.Pos(), format, args...)
	}
	res := flow.Forward[escState](g, lat)
	res.Walk(func(_ *cfg.Block, n ast.Node, before escState) {
		ec.visitNode(lat, before, n, &sum, report, dirs, doc)
	})
	return sum
}

// visitNode inspects one CFG node for escape events against the state
// in force before it.
func (ec *escCtx) visitNode(lat escLattice, s escState, n ast.Node, sum *escSummary, report func(ast.Node, string, ...any), dirs *dirIndex, doc *ast.CommentGroup) {
	pass := ec.pass
	record := func(n ast.Node, m escMask, format string, args ...any) {
		if m&escScratch != 0 {
			report(n, format, args...)
		}
		sum.escapes |= m &^ escScratch
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if i >= len(n.Lhs) {
				break
			}
			lhs := n.Lhs[i]
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				continue
			}
			m := lat.labels(s, rhs) &^ lat.baseMask(s, lhs)
			if !aliasLike(pass.TypesInfo.TypeOf(rhs)) {
				continue
			}
			if m != 0 && !lat.scratchRooted(s, lhs) {
				record(n, m, "stores scratch-backed value in %s (scratch must not outlive the call; DESIGN.md scratch rules)",
					types.ExprString(lhs))
			}
		}
	case *ast.ReturnStmt:
		for i, res := range n.Results {
			m := lat.labels(s, res)
			if !aliasLike(pass.TypesInfo.TypeOf(res)) && !isFuncLit(res) {
				continue
			}
			if i < len(sum.ret) {
				sum.ret[i] |= m
			}
			if m&escScratch != 0 {
				report(n, "returns scratch-backed value %s (scratch is only valid inside the call that produced it)",
					types.ExprString(res))
			}
		}
	case *ast.SendStmt:
		m := lat.labels(s, n.Value)
		if aliasLike(pass.TypesInfo.TypeOf(n.Value)) && m != 0 {
			record(n, m, "sends scratch-backed value %s on a channel", types.ExprString(n.Value))
		}
	case *ast.GoStmt:
		// A goroutine outlives the frame: captured or passed scratch
		// escapes.
		var m escMask
		if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			m |= lat.capturedMask(s, fl)
		}
		for _, a := range n.Call.Args {
			m |= lat.labels(s, a)
		}
		if m != 0 {
			record(n, m, "goroutine may outlive scratch-backed value it captures (scratch must not outlive the call)")
		}
	case *ast.DeferStmt:
		// Deferred closures run before the frame is released: not an
		// escape. Analyzed below for their internal stores.
	}
	// Call-site effects: passing labeled values to a same-package
	// callee whose summary stores them beyond the call.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := flow.StaticCallee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		cs, ok := ec.get(fn)
		if !ok || cs.escapes == 0 {
			return true
		}
		argMasks := lat.argSlotMasks(s, call, fn)
		leaked := translateMask(cs.escapes, argMasks)
		record(call, leaked, "passes scratch-backed value to %s, which stores it beyond the call (scratch must not outlive the call)",
			fn.Name())
		return true
	})
	// Closure bodies: analyze with the captured environment; a closure
	// keeping scratch strictly inside itself is fine, so only its own
	// events report.
	ast.Inspect(n, func(m ast.Node) bool {
		fl, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ec.analyzeFuncLit(fl, lat, s, sum, dirs, doc)
		return false // analyzeFuncLit recurses into nested literals itself
	})
}

func (ec *escCtx) analyzeFuncLit(fl *ast.FuncLit, outer escLattice, s escState, sum *escSummary, dirs *dirIndex, doc *ast.CommentGroup) {
	g := ec.cfgs.FuncLit(fl)
	if g == nil {
		return
	}
	entry := make(escState)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := ec.pass.TypesInfo.Uses[id]; obj != nil {
				if obj.Pos() < fl.Pos() || obj.Pos() >= fl.End() {
					if m := s[obj]; m != 0 {
						entry[obj] = m
					}
				}
			}
		}
		return true
	})
	lat := escLattice{ec: ec, params: map[types.Object]escMask{}, entry: entry}
	// Results of a closure flow to its (local) caller, not out of the
	// enclosing function; returning scratch from a closure is only an
	// escape if the closure itself escapes, which the closure's label
	// mask already tracks. Pass nresults=0 so closure returns are not
	// findings on their own.
	nested := ec.analyzeCFG(g, lat, fl.Body, 0, dirs, doc)
	// Stores inside the closure that leak captured parameters count
	// against the enclosing function's summary.
	sum.escapes |= nested.escapes
}

// isPoolGet reports whether call is (*sync.Pool).Get, directly or
// under a type assertion.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	return strings.HasSuffix(strings.TrimPrefix(types.TypeString(t, nil), "*"), "sync.Pool")
}

// aliasLike reports whether t can alias scratch memory; basic-typed
// copies (an int pulled out of a pooled struct) cannot.
func aliasLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Array, *types.Struct, *types.Interface, *types.Signature:
		return true
	}
	return false
}

func isFuncLit(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.FuncLit)
	return ok
}
