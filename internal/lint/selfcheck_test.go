package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSelfcheck builds cmd/reprolint and runs it over the whole repo,
// so `go test ./...` fails whenever any package violates a
// machine-checked invariant — the suite gates every test run, not just
// the dedicated CI lane.
func TestSelfcheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo analysis run")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	// Module root is two levels up from internal/lint.
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	tool := filepath.Join(t.TempDir(), "reprolint")
	build := exec.Command(goTool, "build", "-o", tool, "./cmd/reprolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reprolint: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("reprolint found violations (fix them or add //repro:allow <analyzer> <reason>):\n%s", out)
	}
}
