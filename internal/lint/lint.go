// Package lint is reprolint: a go/analysis suite that machine-checks
// the repo's prose invariants — the rules that have historically been
// enforced only by package comments and reviewer memory, and that have
// twice shipped silent bugs (the PR 6 synthetic midpoint chain that
// undercharged pointerless search ~1000x, and the PR 5
// mutation-under-RLock and DAM-accounting races).
//
// The suite has seven invariant analyzers plus a directive checker.
// Four are syntactic (v1, per-statement AST matching):
//
//   - damcharge: slices marked //repro:accounted may only be indexed,
//     sliced, or ranged over inside functions declared as charged
//     accessors with //repro:charges <space>. A charged accessor must
//     itself contain a charge call (a Read/Write on a dam space or a
//     call to another charged accessor) unless its directive argument
//     starts with "caller:", which documents that its callers charge.
//   - rlockpure: between mu.RLock() and mu.RUnlock() (and between
//     BeginSharedReads/EndSharedReads, and throughout methods marked
//     //repro:readonly), receiver fields must not be written
//     non-atomically and known-mutating methods of the same package
//     must not be called on the receiver.
//   - bracketbalance: every RLock/Lock/Begin* acquire must have a
//     matching release on every control-flow path to a return; a
//     deferred release satisfies all paths including panics.
//   - durerr: in the durability packages (internal/wal, internal/snap,
//     internal/durable, internal/extmem, and the facade's
//     durability*.go files), a discarded error from
//     Write/Sync/Close/Truncate/Rename is a finding, whether dropped
//     in an expression statement or assigned to blank.
//
// Three are flow-sensitive (v2), built on the internal/lint/flow
// dataflow engine (forward worklist over go/cfg plus bottom-up
// call summaries over the package call graph):
//
//   - chargeamount: the value passed to a DAM charge call inside a
//     charged accessor must be derived from something that was
//     actually probed — an index or slice bound used on an accounted
//     slice, a length of one, or the result of a probing callee. A
//     charge amount conjured from arithmetic that never touched the
//     probed cells (the PR 6 midpoint-chain shape) is a finding.
//   - bracketflow: bracket balance (RLock/Lock/Begin*) tracked as
//     dataflow facts, catching what bracketbalance's per-acquire path
//     walk cannot: releases skipped on loop back edges (balance
//     accumulates) and same-package helpers whose net bracket effect
//     is nonzero (summaries debit/credit the caller's state).
//   - scratchescape: values derived from sync.Pool.Get or from fields
//     marked //repro:scratch must not outlive the call — not returned,
//     stored into non-scratch locations, sent on channels, captured by
//     goroutines, or passed to same-package callees whose summaries
//     say they leak their argument. Subsumes and replaces v1's
//     scratchalias (DESIGN.md scratch ownership rules 1-5).
//
// Intentional exceptions are waived in place with
//
//	//repro:allow <analyzer> <reason>
//
// on the finding's line, the line above it, or the doc comment of the
// enclosing function. A waiver must carry a reason: reprodirective
// (the directive checker) rejects reason-less waivers, unknown
// analyzer names, and malformed directives, and — because every
// invariant analyzer reports which waivers it actually consulted —
// flags stale waivers whose analyzer no longer fires at that site, so
// every suppression in the tree is both explained and live.
package lint

import "golang.org/x/tools/go/analysis"

// Suite returns the repo's custom invariant analyzers, including the
// directive checker.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DirectiveAnalyzer,
		DamchargeAnalyzer,
		ChargeamountAnalyzer,
		RlockpureAnalyzer,
		BracketAnalyzer,
		BracketflowAnalyzer,
		ScratchescapeAnalyzer,
		DurerrAnalyzer,
	}
}
