// Package lint is reprolint: a go/analysis suite that machine-checks
// the repo's prose invariants — the rules that have historically been
// enforced only by package comments and reviewer memory, and that have
// twice shipped silent bugs (the PR 6 synthetic midpoint chain that
// undercharged pointerless search ~1000x, and the PR 5
// mutation-under-RLock and DAM-accounting races).
//
// The suite has five invariant analyzers plus a directive syntax
// checker:
//
//   - damcharge: slices marked //repro:accounted may only be indexed,
//     sliced, or ranged over inside functions declared as charged
//     accessors with //repro:charges <space>. A charged accessor must
//     itself contain a charge call (a Read/Write on a dam space or a
//     call to another charged accessor) unless its directive argument
//     starts with "caller:", which documents that its callers charge.
//   - rlockpure: between mu.RLock() and mu.RUnlock() (and between
//     BeginSharedReads/EndSharedReads, and throughout methods marked
//     //repro:readonly), receiver fields must not be written
//     non-atomically and known-mutating methods of the same package
//     must not be called on the receiver.
//   - bracketbalance: every RLock/Lock/Begin* acquire must have a
//     matching release on every control-flow path to a return; a
//     deferred release satisfies all paths including panics.
//   - scratchalias: values derived from sync.Pool.Get or from fields
//     marked //repro:scratch must not be returned, stored into
//     non-scratch fields, or sent on channels (DESIGN.md scratch
//     ownership rules 1-5).
//   - durerr: in the durability packages (internal/wal, internal/snap,
//     internal/durable, and the facade's durability*.go files), a
//     discarded error from Write/Sync/Close/Truncate/Rename is a
//     finding, whether dropped in an expression statement or assigned
//     to blank.
//
// Intentional exceptions are waived in place with
//
//	//repro:allow <analyzer> <reason>
//
// on the finding's line, the line above it, or the doc comment of the
// enclosing function. A waiver must carry a reason: reprodirective
// (the syntax checker) rejects reason-less waivers, unknown analyzer
// names, and malformed directives, so every suppression in the tree
// is explained.
package lint

import "golang.org/x/tools/go/analysis"

// Suite returns the repo's custom invariant analyzers, including the
// directive syntax checker.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DirectiveAnalyzer,
		DamchargeAnalyzer,
		RlockpureAnalyzer,
		BracketAnalyzer,
		ScratchAnalyzer,
		DurerrAnalyzer,
	}
}
