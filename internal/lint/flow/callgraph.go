package flow

import (
	"go/ast"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Graph is the static, package-local call graph: one node per declared
// function or method with a body, one edge per direct call to another
// declared function of the same package. Calls through interfaces or
// function values, and calls into other packages, are not edges — a
// summary client must treat those callees as unknown.
type Graph struct {
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// callees maps caller → deduped static same-package callees.
	// Calls made inside function literals count as calls of the
	// enclosing declaration (the closure runs, at the latest, when the
	// caller's frame is still conceptually responsible for it).
	callees map[*types.Func][]*types.Func
	// order is every declared function in source order, for
	// deterministic iteration.
	order []*types.Func
}

// PackageGraph builds the call graph for the pass's package.
func PackageGraph(pass *analysis.Pass) *Graph {
	g := &Graph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
			g.order = append(g.order, fn)
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		return g.Decls[g.order[i]].Pos() < g.Decls[g.order[j]].Pos()
	})
	for fn, fd := range g.Decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(pass.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := g.Decls[callee]; declared {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	return g
}

// StaticCallee resolves a call expression to the *types.Func it
// invokes when that is statically known (plain function calls and
// method calls on a concrete receiver); nil for builtins, function
// values, and interface dispatch.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Funcs returns every declared function in source order.
func (g *Graph) Funcs() []*types.Func { return g.order }

// CalleesOf returns the deduped static same-package callees of fn.
func (g *Graph) CalleesOf(fn *types.Func) []*types.Func { return g.callees[fn] }

// SCCs returns the strongly connected components of the graph in
// bottom-up order: every component appears after all components it
// calls into, so summaries computed in slice order see their callees'
// results (mutually recursive functions share a component and are
// iterated to fixpoint by Summaries).
func (g *Graph) SCCs() [][]*types.Func {
	// Tarjan. Package call graphs are shallow; recursion is fine.
	index := make(map[*types.Func]int)
	lowlink := make(map[*types.Func]int)
	onstack := make(map[*types.Func]bool)
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0
	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onstack[v] = true
		for _, w := range g.callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onstack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range g.order {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	return sccs
}

// Summaries computes a bottom-up summary for every declared function.
// compute derives fn's summary, reading callee summaries through get
// (which reports false for unknown or not-yet-computed callees — the
// first iteration of a cycle). Within a strongly connected component,
// compute is re-run until the summaries stop changing, so compute must
// be monotone over a finite summary space or this will not terminate.
func Summaries[T any](g *Graph, equal func(a, b T) bool, compute func(fn *types.Func, fd *ast.FuncDecl, get func(*types.Func) (T, bool)) T) map[*types.Func]T {
	sum := make(map[*types.Func]T)
	get := func(callee *types.Func) (T, bool) {
		t, ok := sum[callee]
		return t, ok
	}
	for _, scc := range g.SCCs() {
		for {
			changed := false
			for _, fn := range scc {
				nt := compute(fn, g.Decls[fn], get)
				if old, ok := sum[fn]; !ok || !equal(old, nt) {
					sum[fn] = nt
					changed = true
				}
			}
			if !changed || len(scc) == 1 && !g.selfEdge(scc[0]) {
				break
			}
		}
	}
	return sum
}

func (g *Graph) selfEdge(fn *types.Func) bool {
	for _, c := range g.callees[fn] {
		if c == fn {
			return true
		}
	}
	return false
}
