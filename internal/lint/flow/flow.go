// Package flow is a small intraprocedural forward-dataflow engine over
// golang.org/x/tools/go/cfg, plus a package-local call graph for
// computing bottom-up call summaries. It exists so reprolint's deeper
// analyzers (chargeamount, scratchescape, bracketflow) can express
// flow-sensitive facts — "this local is derived from a probed index on
// every path reaching this charge call" — that the per-statement AST
// matching of the v1 analyzers cannot.
//
// The engine is deliberately minimal: a client supplies a Lattice (an
// abstract state, a join, and a transfer function over CFG nodes) and
// gets back per-block fixpoint states it can replay node-by-node. The
// lattices used by the lint analyzers are finite (taint sets over a
// function's locals, small balance sets per bracket key), so the
// worklist terminates without widening.
//
// Soundness caveats shared by every client (documented once here,
// referenced from DESIGN.md):
//
//   - Function literals have their own CFGs; a node's transfer must not
//     descend into *ast.FuncLit subtrees. Clients that care about
//     closure bodies analyze them separately with a captured entry
//     state.
//   - The engine is intraprocedural; interprocedural facts arrive only
//     through Summaries, which covers static same-package calls. Calls
//     through interfaces, function values, or into other packages get
//     no summary and must be handled conservatively by the client.
//   - cfg.New treats every call as possibly returning (the analyzers
//     pass a mayReturn that believes panics only from the obvious
//     panic builtin), so states are joined over more paths than can
//     execute — may-analyses stay sound, must-analyses stay
//     conservative.
package flow

import (
	"go/ast"

	"golang.org/x/tools/go/cfg"
)

// Lattice defines one forward dataflow problem over abstract states of
// type S. Join and Equal must be pure; Transfer receives a private
// copy of the state and may mutate it in place before returning it.
type Lattice[S any] interface {
	// Entry is the abstract state at function entry.
	Entry() S
	// Clone returns an independent copy of s.
	Clone(s S) S
	// Join returns the least upper bound of two states reaching the
	// same block. It must not mutate either argument.
	Join(a, b S) S
	// Equal reports whether two states are equal (fixpoint test).
	Equal(a, b S) bool
	// Transfer applies the effect of one CFG node. n is a statement or
	// expression as stored in cfg.Block.Nodes; implementations must not
	// descend into *ast.FuncLit subtrees (closures have their own CFG).
	Transfer(s S, n ast.Node) S
}

// Result holds the fixpoint of one Forward run. In and Out are only
// populated for blocks reachable from the entry block.
type Result[S any] struct {
	G   *cfg.CFG
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
	lat Lattice[S]
}

// Forward runs a forward worklist over g's blocks to fixpoint.
func Forward[S any](g *cfg.CFG, lat Lattice[S]) *Result[S] {
	r := &Result[S]{
		G:   g,
		In:  make(map[*cfg.Block]S),
		Out: make(map[*cfg.Block]S),
		lat: lat,
	}
	if g == nil || len(g.Blocks) == 0 {
		return r
	}
	entry := g.Blocks[0]
	r.In[entry] = lat.Entry()
	work := []*cfg.Block{entry}
	queued := map[*cfg.Block]bool{entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		s := lat.Clone(r.In[b])
		for _, n := range b.Nodes {
			s = lat.Transfer(s, n)
		}
		r.Out[b] = s
		for _, succ := range b.Succs {
			old, seen := r.In[succ]
			var next S
			if !seen {
				next = lat.Clone(s)
			} else {
				next = lat.Join(old, s)
			}
			if !seen || !lat.Equal(old, next) {
				r.In[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return r
}

// Walk replays the transfer function over every reachable block in CFG
// order, invoking visit with the abstract state in force immediately
// before each node. visit must not retain or mutate before; Transfer
// runs on a fresh clone per block, so reporting passes see exactly the
// states the fixpoint computed.
func (r *Result[S]) Walk(visit func(b *cfg.Block, n ast.Node, before S)) {
	for _, b := range r.G.Blocks {
		in, ok := r.In[b]
		if !ok {
			continue // unreachable
		}
		s := r.lat.Clone(in)
		for _, n := range b.Nodes {
			visit(b, n, s)
			s = r.lat.Transfer(s, n)
		}
	}
}

// ExitStates returns the Out state of every reachable block with no
// successors (returns and falls-off-the-end), the states a caller
// observes.
func (r *Result[S]) ExitStates() map[*cfg.Block]S {
	exits := make(map[*cfg.Block]S)
	for _, b := range r.G.Blocks {
		out, ok := r.Out[b]
		if !ok {
			continue
		}
		if len(b.Succs) == 0 {
			exits[b] = out
		}
	}
	return exits
}
