package flow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/flow"
)

// loadPkg type-checks one synthetic dependency-free package.
func loadPkg(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, info, pkg
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// assignedLattice tracks the set of variable names assigned so far — a
// may-analysis whose loop behavior (facts carried around back edges)
// and join (set union) exercise the worklist.
type assignedLattice struct{}

type nameSet map[string]bool

func (assignedLattice) Entry() nameSet { return nameSet{} }
func (assignedLattice) Clone(s nameSet) nameSet {
	c := make(nameSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
func (l assignedLattice) Join(a, b nameSet) nameSet {
	j := l.Clone(a)
	for k := range b {
		j[k] = true
	}
	return j
}
func (assignedLattice) Equal(a, b nameSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (assignedLattice) Transfer(s nameSet, n ast.Node) nameSet {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				s[id.Name] = true
			}
		}
	}
	return s
}

func TestForwardLoopFixpoint(t *testing.T) {
	_, f, _, _ := loadPkg(t, `package p
func g() bool
func target(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if g() {
			continue
		}
		inner := i * 2
		total += inner
	}
	return total
}`)
	fd := funcNamed(f, "target")
	g := cfg.New(fd.Body, func(*ast.CallExpr) bool { return true })
	r := flow.Forward[nameSet](g, assignedLattice{})

	// At the loop condition, "inner" must be visible via the back edge
	// (may-assigned), alongside total and i. At function entry it must
	// not be.
	var condState, entryState nameSet
	r.Walk(func(_ *cfg.Block, n ast.Node, before nameSet) {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.LSS {
			condState = assignedLattice{}.Clone(before)
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "total" && as.Tok == token.DEFINE {
				entryState = assignedLattice{}.Clone(before)
			}
		}
	})
	if condState == nil {
		t.Fatal("loop condition node not visited")
	}
	for _, want := range []string{"total", "i", "inner"} {
		if !condState[want] {
			t.Errorf("loop condition state missing %q (back edge not propagated): %v", want, condState)
		}
	}
	if len(entryState) != 0 {
		t.Errorf("entry state should be empty, got %v", entryState)
	}

	// Every exit state carries all assignments.
	exits := r.ExitStates()
	if len(exits) == 0 {
		t.Fatal("no exit states")
	}
	for b, s := range exits {
		if !s["total"] || !s["inner"] {
			t.Errorf("exit block %d state incomplete: %v", b.Index, s)
		}
	}
}

// fakePass builds just enough of an analysis.Pass for PackageGraph.
func fakePass(fset *token.FileSet, f *ast.File, info *types.Info, pkg *types.Package) *analysis.Pass {
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

func TestSummariesBottomUp(t *testing.T) {
	fset, f, info, pkg := loadPkg(t, `package p
type s struct{ n int }
func (x *s) leaf() int   { return x.n }
func (x *s) mid() int    { return x.leaf() }
func (x *s) a(d int) int { if d == 0 { return x.mid() }; return x.b(d - 1) }
func (x *s) b(d int) int { return x.a(d) }
func (x *s) other() int  { return 7 }`)
	pass := fakePass(fset, f, info, pkg)
	g := flow.PackageGraph(pass)
	if got := len(g.Funcs()); got != 5 {
		t.Fatalf("Funcs: got %d, want 5", got)
	}

	// Summary: does fn transitively call leaf? Exercises both the SCC
	// fixpoint (a <-> b) and bottom-up ordering (mid before a/b).
	callsLeaf := flow.Summaries(g, func(a, b bool) bool { return a == b },
		func(fn *types.Func, fd *ast.FuncDecl, get func(*types.Func) (bool, bool)) bool {
			if fn.Name() == "leaf" {
				return true
			}
			for _, c := range g.CalleesOf(fn) {
				if hit, ok := get(c); ok && hit {
					return true
				}
			}
			return false
		})
	want := map[string]bool{"leaf": true, "mid": true, "a": true, "b": true, "other": false}
	for fn, hit := range callsLeaf {
		if want[fn.Name()] != hit {
			t.Errorf("summary for %s: got %v, want %v", fn.Name(), hit, want[fn.Name()])
		}
	}
	if len(callsLeaf) != len(want) {
		t.Errorf("got %d summaries, want %d", len(callsLeaf), len(want))
	}
}
