package repro

// Tests for the v2 construction surface: Build/Kinds/Register, the
// unified option set with per-kind validation, iterator accessors, and
// the batch-insert adapter.

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestKindsCoverTheLineup checks every structure the facade promises is
// registered.
func TestKindsCoverTheLineup(t *testing.T) {
	want := []string{
		"cola", "basic-cola", "gcola", "deamortized", "deamortized-la",
		"la", "shuttle", "cobtree", "btree", "brt", "swbst",
		"sharded", "synchronized",
	}
	kinds := Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Errorf("Kinds() not sorted: %v", kinds)
	}
	have := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		have[k] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Errorf("kind %q not registered", k)
		}
	}
	if len(want) < 9 {
		t.Fatal("lineup shrank below nine kinds")
	}
	for _, k := range kinds {
		if KindDoc(k) == "" {
			t.Errorf("kind %q has no doc line", k)
		}
	}
}

// TestBuildSmoke builds each kind with defaults and performs a few
// operations (deep behavior is covered by the conformance suite).
func TestBuildSmoke(t *testing.T) {
	for _, kind := range Kinds() {
		var opts []Option
		if KindCaps(kind).WAL {
			opts = append(opts, WithWALPath(filepath.Join(t.TempDir(), kind+".wal")))
		}
		d, err := Build(kind, opts...)
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		d.Insert(7, 70)
		if v, ok := d.Search(7); !ok || v != 70 {
			t.Fatalf("%s: Search(7) = (%d,%v)", kind, v, ok)
		}
		if d.Len() != 1 {
			t.Fatalf("%s: Len = %d", kind, d.Len())
		}
	}
}

// TestBuildErrors exercises the three validation layers: unknown kind,
// out-of-range option value, and option-not-accepted-by-kind.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name    string
		kind    string
		opts    []Option
		wantSub string
	}{
		{"unknown kind", "btre", nil, `unknown dictionary kind "btre"`},
		{"bad growth", "gcola", []Option{WithGrowthFactor(1)}, "growth factor must be at least 2"},
		{"bad density", "gcola", []Option{WithPointerDensity(0.9)}, "density must lie in [0, 0.5]"},
		{"bad epsilon", "la", []Option{WithEpsilon(1.5)}, "epsilon must lie in [0, 1]"},
		{"bad fanout value", "shuttle", []Option{WithFanout(1)}, "fanout must be at least 2"},
		{"shuttle fanout floor", "shuttle", []Option{WithFanout(3)}, "shuttle fanout must be at least 4"},
		{"btree fanout floor", "btree", []Option{WithFanout(2)}, "btree fanout must be at least 3"},
		{"tiny brt blocks", "brt", []Option{WithBlockBytes(64)}, "at least 4 elements"},
		{"epsilon on btree", "btree", []Option{WithEpsilon(0.5)}, "does not accept WithEpsilon"},
		{"space on swbst", "swbst", []Option{WithSpace(nil)}, "does not accept WithSpace"},
		{"space on sharded", "sharded", []Option{WithSpace(nil)}, "does not accept WithSpace"},
		{"growth on cola", "cola", []Option{WithGrowthFactor(4)}, "does not accept WithGrowthFactor"},
		{"bad shards", "sharded", []Option{WithShards(0)}, "shard count must be positive"},
		{"bad batch", "sharded", []Option{WithBatchSize(0)}, "batch size must be positive"},
		{"inner and factory", "sharded",
			[]Option{WithInner("cola"), WithDictionary(func(int, *Space) Dictionary { return MustBuild("cola") })},
			"mutually exclusive"},
		{"unknown inner", "sharded", []Option{WithInner("nope")}, `unknown dictionary kind "nope"`},
		{"unknown sync inner", "synchronized", []Option{WithInner("nope")}, `unknown inner kind "nope"`},
		{"inner space on sharded", "sharded",
			[]Option{WithInner("cola", WithSpace(nil))}, "private space"},
		{"shard dam over swbst", "sharded",
			[]Option{WithInner("swbst"), WithShardDAM(4096, 1<<16)}, "WithShardDAM has no effect"},
		{"sync space over swbst", "synchronized",
			[]Option{WithInner("swbst"), WithSpace(nil)}, `inner kind "swbst" does not accept WithSpace`},
		{"bad inner option", "sharded",
			[]Option{WithInner("gcola", WithGrowthFactor(1))}, "growth factor must be at least 2"},
		{"spill depth without dir", "gcola",
			[]Option{WithSpillDepth(3)}, "require WithSpillDir"},
		{"bad spill depth", "gcola",
			[]Option{WithSpillDir("."), WithSpillDepth(0)}, "spill depth must be at least 1"},
		{"bad spill cache", "gcola",
			[]Option{WithSpillDir("."), WithSpillCacheBytes(0)}, "cache budget must be positive"},
		{"spill on cola", "cola",
			[]Option{WithSpillDir(".")}, "does not accept WithSpillDir"},
		{"spill inner on durable", "durable",
			[]Option{WithWALPath(filepath.Join(t.TempDir(), "spill-inner.wal")),
				WithInner("gcola", WithSpillDir("."))}, "runtime wiring"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Build(tc.kind, tc.opts...)
			if err == nil {
				t.Fatalf("Build(%q) succeeded (%T), want error containing %q", tc.kind, d, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Build(%q) error = %q, want substring %q", tc.kind, err, tc.wantSub)
			}
		})
	}
}

// TestBuildOptionWiring spot-checks that options reach the underlying
// structures.
func TestBuildOptionWiring(t *testing.T) {
	g4, err := Build("gcola", WithGrowthFactor(4))
	if err != nil {
		t.Fatal(err)
	}
	if g := g4.(*COLA).Growth(); g != 4 {
		t.Errorf("gcola growth = %d, want 4", g)
	}

	lad, err := Build("la", WithEpsilon(1), WithBlockBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	la := lad.(*LookaheadArray)
	if la.Epsilon() != 1 || la.BlockElems() != 4096/ElementBytes {
		t.Errorf("la = (eps %g, B %d), want (1, %d)", la.Epsilon(), la.BlockElems(), 4096/ElementBytes)
	}

	sm, err := Build("sharded", WithShards(3), WithInner("btree"))
	if err != nil {
		t.Fatal(err)
	}
	if n := sm.(*ShardedMap).NumShards(); n != 4 {
		t.Errorf("shards = %d, want 4 (rounded up)", n)
	}

	store := NewStore(DefaultBlockBytes, 1<<16)
	bt, err := Build("btree", WithSpace(store.Space("bt")), WithLeafCapacity(4), WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		bt.Insert(i, i)
	}
	if store.Transfers() == 0 {
		t.Error("WithSpace not wired: no transfers recorded")
	}

	// Per-shard DAM accounting surfaces through TransferCounter.
	dm, err := Build("sharded", WithShards(2), WithShardDAM(DefaultBlockBytes, 1<<14))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100_000; i++ {
		dm.Insert(i, i)
	}
	if tc, ok := dm.(TransferCounter); !ok || tc.Transfers() == 0 {
		t.Errorf("sharded WithShardDAM: TransferCounter = %v", ok)
	}

	// Spill options reach the out-of-core gcola: real chunk I/O is
	// performed and reported through ActualTransferCounter.
	sp, err := Build("gcola", WithSpillDir(t.TempDir()), WithSpillDepth(2), WithSpillCacheBytes(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		sp.Insert(i, i)
	}
	atc, ok := sp.(ActualTransferCounter)
	if !ok {
		t.Fatalf("spilled gcola %T does not implement ActualTransferCounter", sp)
	}
	if reads, writes := atc.ActualTransfers(); reads == 0 || writes == 0 {
		t.Errorf("spilled gcola performed no actual I/O (reads=%d writes=%d)", reads, writes)
	}
	if err := sp.(interface{ Close() error }).Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestSynchronizedKind builds the wrapper kind with an inner selection
// and a forwarded space.
func TestSynchronizedKind(t *testing.T) {
	store := NewStore(DefaultBlockBytes, 1<<16)
	d, err := Build("synchronized", WithInner("btree"), WithSpace(store.Space("sync")))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := d.(*SynchronizedDictionary)
	if !ok {
		t.Fatalf("synchronized built %T", d)
	}
	for i := uint64(0); i < 10_000; i++ {
		s.Insert(i, i)
	}
	if store.Transfers() == 0 {
		t.Error("inner space not wired through synchronized")
	}
	if _, ok := s.Unwrap().(*BTree); !ok {
		t.Errorf("inner = %T, want *BTree", s.Unwrap())
	}
}

// testKind is a minimal conforming dictionary used to exercise external
// registration; it intentionally lives outside the built-in lineup.
type testKindDict struct {
	m map[uint64]uint64
}

func (d *testKindDict) Insert(k, v uint64) { d.m[k] = v }
func (d *testKindDict) Search(k uint64) (uint64, bool) {
	v, ok := d.m[k]
	return v, ok
}
func (d *testKindDict) Len() int { return len(d.m) }
func (d *testKindDict) Range(lo, hi uint64, fn func(Element) bool) {
	keys := make([]uint64, 0, len(d.m))
	for k := range d.m {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(Element{Key: k, Value: d.m[k]}) {
			return
		}
	}
}
func (d *testKindDict) Delete(k uint64) bool {
	_, ok := d.m[k]
	delete(d.m, k)
	return ok
}

// TestRegisterExternalKind registers a new kind and checks it becomes a
// first-class citizen: buildable, enumerable, usable as a wrapper
// inner, and rejected on duplicate registration.
func TestRegisterExternalKind(t *testing.T) {
	const kind = "test-hashmap"
	// The registry is package-global, so a previous run of this test in
	// the same process (go test -count=2) already registered the kind;
	// only an unexpected error is fatal.
	if err := Register(kind, KindInfo{
		Doc:     "test-only hash map",
		Options: nil,
		New: func(*BuildConfig) (Dictionary, error) {
			return &testKindDict{m: make(map[uint64]uint64)}, nil
		},
	}); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	found := false
	for _, k := range Kinds() {
		found = found || k == kind
	}
	if !found {
		t.Fatalf("Kinds() missing %q after Register", kind)
	}
	d, err := Build(kind)
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(1, 2)
	if v, ok := d.Search(1); !ok || v != 2 {
		t.Fatalf("external kind Search = (%d,%v)", v, ok)
	}
	if _, err := Build(kind, WithFanout(8)); err == nil ||
		!strings.Contains(err.Error(), "does not accept WithFanout") {
		t.Fatalf("external kind accepted undeclared option: %v", err)
	}
	// Usable as a wrapper inner immediately.
	sm, err := Build("sharded", WithShards(2), WithInner(kind))
	if err != nil {
		t.Fatal(err)
	}
	sm.Insert(9, 90)
	if v, ok := sm.Search(9); !ok || v != 90 {
		t.Fatalf("sharded over external kind Search = (%d,%v)", v, ok)
	}
	// Duplicate and degenerate registrations fail.
	if err := Register(kind, KindInfo{New: func(*BuildConfig) (Dictionary, error) { return nil, nil }}); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register("", KindInfo{New: func(*BuildConfig) (Dictionary, error) { return nil, nil }}); err == nil {
		t.Error("empty-name Register succeeded")
	}
	if err := Register("test-nil-new", KindInfo{}); err == nil {
		t.Error("nil-New Register succeeded")
	}
}

// TestDeprecatedConstructorsStillWork pins the v1 surface: the typed
// constructors remain usable and NewShardedMap accepts the unified
// options, including an explicit factory.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	m := NewShardedMap(
		WithShards(2),
		WithDictionary(func(_ int, sp *Space) Dictionary {
			return NewBTree(BTreeOptions{Space: sp})
		}),
		WithBatchSize(16),
	)
	for i := uint64(0); i < 1000; i++ {
		m.Insert(i, i)
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d", m.Len())
	}

	defer func() {
		if recover() == nil {
			t.Error("NewShardedMap with invalid options did not panic")
		}
	}()
	NewShardedMap(WithEpsilon(0.5))
}

// TestInsertBatchAdapter checks the generic fallback against a
// structure with no native batch path.
func TestInsertBatchAdapter(t *testing.T) {
	d := MustBuild("swbst")
	if _, ok := d.(BatchInserter); ok {
		t.Skip("swbst grew a native batch path; pick another fallback kind")
	}
	InsertBatch(d, []Element{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 1, Value: 11}})
	if v, _ := d.Search(1); v != 11 {
		t.Fatalf("last-write-wins violated: Search(1) = %d", v)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// TestIteratorAccessors covers All/Ascend/Elements including early
// termination propagating into Range.
func TestIteratorAccessors(t *testing.T) {
	d := MustBuild("cola")
	for i := uint64(0); i < 100; i += 2 {
		d.Insert(i, i*3)
	}
	var got []uint64
	for k, v := range Ascend(d, 10, 20) {
		if v != k*3 {
			t.Fatalf("Ascend value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
	}
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Ascend keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend keys = %v, want %v", got, want)
		}
	}
	n := 0
	for range All(d) {
		n++
	}
	if n != 50 {
		t.Fatalf("All visited %d, want 50", n)
	}
	n = 0
	for e := range Elements(d, 0, ^uint64(0)) {
		if e.Value != e.Key*3 {
			t.Fatalf("Elements mismatch: %v", e)
		}
		n++
		if n == 7 {
			break
		}
	}
	if n != 7 {
		t.Fatalf("early break visited %d", n)
	}
}
