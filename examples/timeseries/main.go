// Timeseries: ingest metrics samples at high rate and serve windowed
// range scans — the mixed workload where the choice of structure is a
// genuine tradeoff. Demonstrates the deamortized COLA for latency-
// sensitive ingestion: its worst-case insert is O(log N) moves, so no
// sample ever stalls behind a full-structure rebuild.
package main

import (
	"fmt"
	"time"

	repro "repro"
	"repro/internal/workload"
)

func main() {
	// Latency-sensitive path: the deamortized COLA never performs a big
	// rebuild inside one insert.
	deam := repro.MustBuild("deamortized")
	// Throughput path: the amortized COLA is faster on average but an
	// individual insert can rebuild everything.
	amort := repro.MustBuild("cola")

	const samples = 1 << 18
	rng := workload.NewRNG(99)

	// Measure the worst single-insert latency of each.
	worst := func(d repro.Dictionary) (time.Duration, time.Duration) {
		var worst time.Duration
		start := time.Now()
		ts := uint64(0)
		for i := 0; i < samples; i++ {
			ts += 1 + rng.Uint64()%50
			t0 := time.Now()
			d.Insert(ts, rng.Uint64()%1000)
			if el := time.Since(t0); el > worst {
				worst = el
			}
		}
		return worst, time.Since(start)
	}

	worstDeam, totalDeam := worst(deam)
	worstAmort, totalAmort := worst(amort)

	fmt.Printf("ingested %d samples into each structure\n", samples)
	fmt.Printf("  amortized COLA:   total %8v, worst single insert %8v\n",
		totalAmort.Round(time.Millisecond), worstAmort)
	fmt.Printf("  deamortized COLA: total %8v, worst single insert %8v\n",
		totalDeam.Round(time.Millisecond), worstDeam)

	stA := amort.(repro.Statser).Stats()
	stD := deam.(repro.Statser).Stats()
	fmt.Printf("  max element moves in one insert: amortized %d vs deamortized %d\n",
		stA.MaxMoves, stD.MaxMoves)

	// Windowed aggregation over the amortized COLA (it supports the
	// same queries), via the Go 1.23 iterator accessor.
	var sum, count uint64
	lo := uint64(samples) * 25 / 4 // somewhere in the middle of the time range
	hi := lo + 5000
	for _, v := range repro.Ascend(amort, lo, hi) {
		sum += v
		count++
	}
	if count > 0 {
		fmt.Printf("window [%d, %d]: %d samples, mean value %.1f\n", lo, hi, count, float64(sum)/float64(count))
	} else {
		fmt.Printf("window [%d, %d]: empty\n", lo, hi)
	}

	// Downsample: scan a wide window, keeping every kth sample.
	kept := 0
	seen := 0
	amort.Range(0, ^uint64(0), func(e repro.Element) bool {
		if seen%1000 == 0 {
			kept++
		}
		seen++
		return true
	})
	fmt.Printf("full scan: %d samples, downsampled to %d\n", seen, kept)
}
