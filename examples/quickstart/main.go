// Quickstart: build a dictionary by name, insert (single and batch),
// search, iterate, delete, and watch the DAM-model transfer counter —
// five minutes with the public API of the streaming B-tree library.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// A simulated two-level memory: 4 KiB blocks, 256 KiB cache. Every
	// structure charges its memory traffic here, so you can measure
	// block transfers — the quantity the paper's analysis bounds —
	// deterministically, with no disk required.
	store := repro.NewStore(repro.DefaultBlockBytes, 256<<10)

	// Build constructs any registered kind (repro.Kinds() lists them)
	// from one shared option set. "cola" is the cache-oblivious
	// lookahead array: amortized O((log N)/B) block transfers per
	// insert, O(log N) per search.
	d, err := repro.Build("cola", repro.WithSpace(store.Space("quickstart")))
	if err != nil {
		log.Fatal(err)
	}

	const n = 200_000
	for i := uint64(0); i < n; i++ {
		key := i * 2654435761 % (1 << 30) // scrambled but deterministic
		d.Insert(key, i)
	}
	fmt.Printf("inserted %d keys with %d block transfers (%.4f per insert)\n",
		d.Len(), store.Transfers(), float64(store.Transfers())/float64(n))

	// Point lookups.
	probe := uint64(7) * 2654435761 % (1 << 30)
	if v, ok := d.Search(probe); ok {
		fmt.Printf("Search(%d) = %d\n", probe, v)
	}

	// Iterate with a Go 1.23 range-over-func: ascending key order,
	// contiguous levels make this fast. Breaking out stops the scan.
	count := 0
	for range repro.Ascend(d, 0, 1<<20) {
		count++
		if count == 5 {
			break
		}
	}
	fmt.Printf("iterator visited %d elements in [0, 2^20] before stopping\n", count)

	// Deletes are tombstones that annihilate during merges.
	if del, ok := d.(repro.Deleter); ok && del.Delete(probe) {
		if _, ok := d.Search(probe); !ok {
			fmt.Printf("Delete(%d) ok; key gone\n", probe)
		}
	}

	// Compare with the B-tree baseline on the same workload — same
	// Build call, different kind string. InsertBatch uses a structure's
	// native batch path when it has one and an insert loop otherwise.
	bt, err := repro.Build("btree", repro.WithSpace(store.Space("btree")))
	if err != nil {
		log.Fatal(err)
	}
	batch := make([]repro.Element, 0, n)
	for i := uint64(0); i < n; i++ {
		batch = append(batch, repro.Element{Key: i * 2654435761 % (1 << 30), Value: i})
	}
	before := store.Transfers()
	repro.InsertBatch(bt, batch)
	btTransfers := store.Transfers() - before
	fmt.Printf("B-tree needed %d transfers for the same inserts (%.1fx the COLA)\n",
		btTransfers, float64(btTransfers)/float64(before))

	// Invalid configurations fail with descriptive errors instead of
	// silently ignoring options.
	if _, err := repro.Build("btree", repro.WithEpsilon(0.5)); err != nil {
		fmt.Printf("as expected: %v\n", err)
	}
}
