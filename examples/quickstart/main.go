// Quickstart: create a COLA, insert, search, range-scan, delete, and
// watch the DAM-model transfer counter — five minutes with the public
// API of the streaming B-tree library.
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	// A simulated two-level memory: 4 KiB blocks, 256 KiB cache. Every
	// structure charges its memory traffic here, so you can measure
	// block transfers — the quantity the paper's analysis bounds —
	// deterministically, with no disk required.
	store := repro.NewStore(repro.DefaultBlockBytes, 256<<10)

	// The cache-oblivious lookahead array (COLA): amortized
	// O((log N)/B) block transfers per insert, O(log N) per search.
	d := repro.NewCOLA(store.Space("quickstart"))

	const n = 200_000
	for i := uint64(0); i < n; i++ {
		key := i * 2654435761 % (1 << 30) // scrambled but deterministic
		d.Insert(key, i)
	}
	fmt.Printf("inserted %d keys with %d block transfers (%.4f per insert)\n",
		d.Len(), store.Transfers(), float64(store.Transfers())/float64(n))

	// Point lookups.
	probe := uint64(7) * 2654435761 % (1 << 30)
	if v, ok := d.Search(probe); ok {
		fmt.Printf("Search(%d) = %d\n", probe, v)
	}

	// Range scan: ascending key order, contiguous levels make this fast.
	count := 0
	d.Range(0, 1<<20, func(e repro.Element) bool {
		count++
		return count < 5 // stop early after a few
	})
	fmt.Printf("range scan visited %d elements in [0, 2^20]\n", count)

	// Deletes are tombstones that annihilate during merges.
	if d.Delete(probe) {
		if _, ok := d.Search(probe); !ok {
			fmt.Printf("Delete(%d) ok; key gone\n", probe)
		}
	}

	// Compare with the B-tree baseline on the same workload.
	bt := repro.NewBTree(repro.BTreeOptions{Space: store.Space("btree")})
	before := store.Transfers()
	for i := uint64(0); i < n; i++ {
		key := i * 2654435761 % (1 << 30)
		bt.Insert(key, i)
	}
	btTransfers := store.Transfers() - before
	fmt.Printf("B-tree needed %d transfers for the same inserts (%.1fx the COLA)\n",
		btTransfers, float64(btTransfers)/float64(before))
}
