// Tradeoff: pick your point on the insert/search curve. The cache-aware
// lookahead array with growth factor B^epsilon spans the Be-tree
// tradeoff of Brodal and Fagerberg: eps = 0 is the COLA/BRT point
// (fastest inserts), eps = 1 is the B-tree point (fastest searches),
// and eps = 1/2 trades a 2x search slowdown for a ~sqrt(B)/2 insert
// speedup. This example measures all three on the same workload and
// prints the curve.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/workload"
)

func main() {
	const (
		blockBytes = repro.DefaultBlockBytes
		cacheBytes = 512 << 10
		n          = 1 << 17
		searches   = 1 << 12
	)
	blockElems := blockBytes / repro.ElementBytes

	fmt.Printf("B = %d elements/block, N = %d, cache = %d KiB\n\n", blockElems, n, cacheBytes>>10)
	fmt.Printf("%-8s %-8s %-18s %-18s\n", "epsilon", "growth", "insert transfers", "search transfers")

	for _, eps := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		store := repro.NewStore(blockBytes, cacheBytes)
		d, err := repro.Build("la",
			repro.WithEpsilon(eps),
			repro.WithBlockBytes(blockBytes),
			repro.WithSpace(store.Space("la")),
		)
		if err != nil {
			log.Fatal(err)
		}
		a := d.(*repro.LookaheadArray)

		seq := workload.NewRandomUnique(17)
		for i := 0; i < n; i++ {
			k := seq.Next()
			a.Insert(k, k)
		}
		insertT := float64(store.Transfers()) / float64(n)

		store.DropCache()
		store.ResetCounters()
		probe := workload.NewRandomUnique(17)
		for i := 0; i < searches; i++ {
			a.Search(probe.Next())
		}
		searchT := float64(store.Transfers()) / float64(searches)

		fmt.Printf("%-8.2f %-8d %-18.5f %-18.3f\n", eps, a.GrowthFactor(), insertT, searchT)
	}

	fmt.Println("\nReading the curve: moving epsilon up buys cheaper searches with")
	fmt.Println("costlier inserts. eps=0 matches the cache-oblivious COLA; eps=1")
	fmt.Println("behaves like a B-tree. The sweet spot for mixed workloads is")
	fmt.Println("usually eps in [0.5, 0.75] — the same conclusion Be-tree systems")
	fmt.Println("(e.g. the fractal-tree storage engines this paper inspired) reached.")
}
