// Logindex: the write-heavy workload that motivates streaming B-trees —
// indexing a firehose of log events. Two indexes are maintained over the
// same stream, exercising both regimes of the paper's evaluation:
//
//   - a primary TIME index keyed by (timestamp, source): keys arrive in
//     nearly ascending order, the B-tree's best case (Figure 3);
//   - a secondary DEDUP index keyed by a content hash: keys arrive in
//     uniformly random order, where the COLA's O((log N)/B) insert
//     crushes the B-tree's one-random-block-per-insert (Figure 2).
//
// The punchline matches the paper: which structure to use depends on the
// key order your workload generates, and for random-keyed secondary
// indexes — the common case — the write-optimized structure wins by
// orders of magnitude out of core.
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/workload"
)

// event is a synthetic log record.
type event struct {
	ts     uint64
	source uint16
	level  uint8
	hash   uint64 // content hash (dedup key)
}

func timeKey(e event) uint64 { return e.ts<<16 | uint64(e.source) }

func main() {
	const events = 300_000
	rng := workload.NewRNG(2024)
	zipf := workload.NewZipf(7, 512, 1.3)

	gen := make([]event, events)
	ts := uint64(1_700_000_000_000)
	for i := range gen {
		ts += 1 + rng.Uint64()%1000 // jittered, nearly ascending arrival
		gen[i] = event{
			ts:     ts,
			source: uint16(zipf.Next()),
			level:  uint8(rng.Uint64() % 5),
			hash:   rng.Uint64(), // content hash: uniformly random
		}
	}

	// The two contenders differ only in the kind string handed to Build
	// — the registry makes swapping structures a data change.
	type contender struct {
		name string
		kind string
	}
	contenders := []contender{
		{"COLA", "cola"},
		{"B-tree", "btree"},
	}

	measure := func(title string, key func(event) uint64) map[string]uint64 {
		fmt.Printf("%s\n", title)
		out := map[string]uint64{}
		for _, c := range contenders {
			store := repro.NewStore(repro.DefaultBlockBytes, 512<<10)
			d, err := repro.Build(c.kind, repro.WithSpace(store.Space(c.name)))
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			for _, e := range gen {
				d.Insert(key(e), uint64(e.level))
			}
			wall := time.Since(start)
			out[c.name] = store.Transfers()
			fmt.Printf("  %-7s %8v wall, %9d transfers (%.4f/event)\n",
				c.name+":", wall.Round(time.Millisecond), store.Transfers(),
				float64(store.Transfers())/events)
		}
		fmt.Println()
		return out
	}

	fmt.Printf("indexing %d events, two indexes each\n\n", events)
	timeT := measure("TIME index — keys nearly ascending (B-tree's best case, cf. Figure 3):",
		timeKey)
	hashT := measure("DEDUP index — keys uniformly random (the streaming case, cf. Figure 2):",
		func(e event) uint64 { return e.hash })

	fmt.Printf("summary:\n")
	fmt.Printf("  time index:  B-tree/COLA transfer ratio = %.2fx (B-tree competitive on sorted keys)\n",
		float64(timeT["B-tree"])/float64(timeT["COLA"]))
	fmt.Printf("  dedup index: B-tree/COLA transfer ratio = %.2fx (COLA wins on random keys)\n\n",
		float64(hashT["B-tree"])/float64(hashT["COLA"]))

	// Serve queries from a COLA-built dedup index to show reads work.
	store := repro.NewStore(repro.DefaultBlockBytes, 512<<10)
	dedup, err := repro.Build("cola", repro.WithSpace(store.Space("dedup")))
	if err != nil {
		log.Fatal(err)
	}
	seenDupes := 0
	for _, e := range gen {
		if _, ok := dedup.Search(e.hash); ok {
			seenDupes++
			continue
		}
		dedup.Insert(e.hash, e.ts)
	}
	fmt.Printf("dedup pass (search-before-insert): %d duplicates among %d events\n",
		seenDupes, events)

	// Time-window query on the time index: contiguous key range, read
	// through the Go 1.23 iterator accessor.
	timeIdx := repro.MustBuild("cola")
	for _, e := range gen {
		timeIdx.Insert(timeKey(e), uint64(e.level))
	}
	mid := gen[events/2]
	lo := (mid.ts - 100_000) << 16
	hi := (mid.ts + 100_000) << 16
	count := 0
	for range repro.Ascend(timeIdx, lo, hi) {
		count++
	}
	fmt.Printf("time-window scan (+/-100ms around median event): %d events\n", count)
}
