package repro

// Benchmarks regenerating the paper's evaluation, one per figure plus
// the asymptotic-claim experiments (DESIGN.md E1-E10). Wall-clock rates
// come from testing.B; DAM block transfers per operation are reported as
// the custom metric "transfers/op" so the theoretical quantity appears
// alongside ns/op:
//
//	go test -bench=. -benchmem
//	go test -bench BenchmarkFig2 -benchtime 1000000x   # fixed op count
//
// The full parameter sweeps (the actual figure series) live in
// cmd/streambench; these benches measure the same workloads at one
// operating point each.

import (
	"testing"

	"repro/internal/workload"
)

const (
	benchBlockBytes = 4096
	benchCacheBytes = 1 << 20 // 1 MiB: structures leave cache during long benches
	benchPreload    = 1 << 16 // searches run against this many keys
)

// damDict builds each structure under benchmark with its own store.
func damDict(name string) (Dictionary, *Store) {
	store := NewStore(benchBlockBytes, benchCacheBytes)
	switch name {
	case "2-COLA":
		return MustBuild("gcola", WithGrowthFactor(2), WithSpace(store.Space(name))), store
	case "4-COLA":
		return MustBuild("gcola", WithGrowthFactor(4), WithSpace(store.Space(name))), store
	case "8-COLA":
		return MustBuild("gcola", WithGrowthFactor(8), WithSpace(store.Space(name))), store
	case "basic-COLA":
		return MustBuild("basic-cola", WithSpace(store.Space(name))), store
	case "deamortized-COLA":
		return MustBuild("deamortized", WithSpace(store.Space(name))), store
	case "deamortized-lookahead-COLA":
		return MustBuild("deamortized-la", WithSpace(store.Space(name))), store
	case "B-tree":
		return MustBuild("btree", WithBlockBytes(benchBlockBytes), WithSpace(store.Space(name))), store
	case "BRT":
		return MustBuild("brt", WithBlockBytes(benchBlockBytes), WithSpace(store.Space(name))), store
	case "shuttle":
		return MustBuild("shuttle", WithFanout(8), WithSpace(store.Space(name))), store
	}
	panic("unknown structure " + name)
}

// benchInserts measures inserts from seq into the named structure.
func benchInserts(b *testing.B, name string, mkSeq func() workload.Sequence) {
	b.Helper()
	d, store := damDict(name)
	seq := mkSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := seq.Next()
		d.Insert(k, k)
	}
	b.StopTimer()
	b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
}

// BenchmarkFig2RandomInserts is E1 (paper Figure 2): random inserts,
// COLA growth factors vs the B-tree.
func BenchmarkFig2RandomInserts(b *testing.B) {
	for _, name := range []string{"2-COLA", "4-COLA", "8-COLA", "B-tree"} {
		b.Run(name, func(b *testing.B) {
			benchInserts(b, name, func() workload.Sequence { return workload.NewRandomUnique(1) })
		})
	}
}

// BenchmarkFig3SortedInserts is E2 (paper Figure 3): descending keys,
// the B-tree's best case.
func BenchmarkFig3SortedInserts(b *testing.B) {
	for _, name := range []string{"2-COLA", "4-COLA", "8-COLA", "B-tree"} {
		b.Run(name, func(b *testing.B) {
			benchInserts(b, name, func() workload.Sequence {
				return workload.NewDescending(uint64(b.N))
			})
		})
	}
}

// BenchmarkFig4Searches is E3 (paper Figure 4): random searches after a
// sorted load, cold cache.
func BenchmarkFig4Searches(b *testing.B) {
	for _, name := range []string{"2-COLA", "4-COLA", "8-COLA", "B-tree"} {
		b.Run(name, func(b *testing.B) {
			d, store := damDict(name)
			seq := workload.NewDescending(benchPreload)
			for i := 0; i < benchPreload; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			store.DropCache()
			store.ResetCounters()
			probe := workload.NewRNG(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Search(probe.Uint64() % benchPreload)
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkFig5InsertOrders is E4 (paper Figure 5): the 4-COLA under
// ascending, descending, and random key orders.
func BenchmarkFig5InsertOrders(b *testing.B) {
	orders := []struct {
		name string
		mk   func(n int) workload.Sequence
	}{
		{"Ascending", func(int) workload.Sequence { return workload.NewAscending() }},
		{"Descending", func(n int) workload.Sequence { return workload.NewDescending(uint64(n)) }},
		{"Random", func(int) workload.Sequence { return workload.NewRandomUnique(1) }},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			benchInserts(b, "4-COLA", func() workload.Sequence { return o.mk(b.N) })
		})
	}
}

// BenchmarkTransfers is E6: transfers/op for every structure (inserts).
func BenchmarkTransfers(b *testing.B) {
	for _, name := range []string{
		"2-COLA", "basic-COLA", "deamortized-COLA", "deamortized-lookahead-COLA",
		"BRT", "B-tree", "shuttle",
	} {
		b.Run(name, func(b *testing.B) {
			benchInserts(b, name, func() workload.Sequence { return workload.NewRandomUnique(3) })
		})
	}
}

// BenchmarkTradeoffLA is E6's cache-aware sweep: the lookahead array at
// eps in {0, 0.5, 1} spans the Be-tree insert/search tradeoff.
func BenchmarkTradeoffLA(b *testing.B) {
	for _, eps := range []float64{0, 0.5, 1} {
		name := map[float64]string{0: "eps0.0", 0.5: "eps0.5", 1: "eps1.0"}[eps]
		b.Run(name, func(b *testing.B) {
			store := NewStore(benchBlockBytes, benchCacheBytes)
			a := MustBuild("la",
				WithBlockBytes(benchBlockBytes),
				WithEpsilon(eps),
				WithSpace(store.Space("la")))
			seq := workload.NewRandomUnique(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				a.Insert(k, k)
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkDeamortizedWorstCase is E7: the custom metric is the largest
// number of element moves any single insert performed — O(log N) for the
// deamortized variants, Omega(N) for the amortized COLA.
func BenchmarkDeamortizedWorstCase(b *testing.B) {
	for _, name := range []string{"2-COLA", "deamortized-COLA", "deamortized-lookahead-COLA"} {
		b.Run(name, func(b *testing.B) {
			d, _ := damDict(name)
			seq := workload.NewRandomUnique(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			b.StopTimer()
			b.ReportMetric(float64(d.(Statser).Stats().MaxMoves), "max-moves/insert")
		})
	}
}

// BenchmarkShuttleVsBTree is E8: the cache-oblivious shuttle tree
// measured against the B-tree at one block size (cmd/streambench sweeps
// several).
func BenchmarkShuttleVsBTree(b *testing.B) {
	for _, name := range []string{"shuttle", "B-tree"} {
		b.Run(name+"/insert", func(b *testing.B) {
			benchInserts(b, name, func() workload.Sequence { return workload.NewRandomUnique(11) })
		})
		b.Run(name+"/search", func(b *testing.B) {
			d, store := damDict(name)
			seq := workload.NewRandomUnique(11)
			for i := 0; i < benchPreload; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			store.DropCache()
			store.ResetCounters()
			probe := workload.NewRandomUnique(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Search(probe.Next())
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkRangeScans compares range-query throughput: the COLA family
// stores levels contiguously, the motivation the paper gives for faster
// scans than pointer-chasing trees.
func BenchmarkRangeScans(b *testing.B) {
	for _, name := range []string{"2-COLA", "B-tree"} {
		b.Run(name, func(b *testing.B) {
			d, store := damDict(name)
			for i := uint64(0); i < benchPreload; i++ {
				d.Insert(i, i)
			}
			store.DropCache()
			store.ResetCounters()
			b.ResetTimer()
			count := 0
			for i := 0; i < b.N; i++ {
				lo := uint64(i%(benchPreload-1024)) &^ 1023
				d.Range(lo, lo+1023, func(Element) bool { count++; return true })
			}
			b.StopTimer()
			if count == 0 {
				b.Fatal("range scans returned nothing")
			}
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkPureInsertNoAccounting measures raw wall-clock insert rates
// with DAM accounting disabled (nil space), the closest analogue of the
// paper's in-core regime.
func BenchmarkPureInsertNoAccounting(b *testing.B) {
	mk := map[string]func() Dictionary{
		"2-COLA":  func() Dictionary { return MustBuild("cola") },
		"4-COLA":  func() Dictionary { return MustBuild("gcola", WithGrowthFactor(4)) },
		"B-tree":  func() Dictionary { return MustBuild("btree") },
		"BRT":     func() Dictionary { return MustBuild("brt") },
		"shuttle": func() Dictionary { return MustBuild("shuttle", WithFanout(8)) },
	}
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			d := f()
			seq := workload.NewRandomUnique(13)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
		})
	}
}
